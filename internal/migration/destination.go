package migration

import (
	"fmt"

	"javmm/internal/faults"
	"javmm/internal/mem"
	"javmm/internal/netsim"
	"javmm/internal/obs"
)

// Destination is the receiving host's view of the migration: its own copy of
// the VM's memory. It is the default PageSink of every engine.
type Destination struct {
	Store          mem.PageStore
	PagesReceived  uint64
	BytesReceived  uint64
	ImportFailures int

	tee       *netsim.PageWriter
	teeErrors int
	metrics   *obs.Metrics
	faults    *faults.Injector
	crashed   bool
	discarded bool

	// host is the destination's fleet identity: the host name the fabric
	// dialled, empty for single-VM runs. Host-scoped fault rules match
	// against it, and ResumeTokens are minted bound to it.
	host string

	// Integrity state: a per-PFN digest table over the payloads actually
	// received (recomputed on receipt, so in-flight corruption lands here,
	// not in the source's expectation), the set of PFNs ever received, a
	// run-level rolling summary of the receive sequence, and a generation
	// counter bumped by every Discard so a stale ResumeToken can detect that
	// it describes a previous image.
	received   *mem.Bitmap
	digests    []uint64
	rolling    uint64
	generation uint64
}

// SetMetrics attaches a metrics registry to the destination's receive path
// (dest.pages_received, dest.bytes_received, dest.import_failures,
// dest.tee_errors). A nil registry detaches.
func (d *Destination) SetMetrics(m *obs.Metrics) { d.metrics = m }

// SetFaults attaches a fault injector: dest.receive rules fail individual
// page receives transiently, a dest.crash rule kills the destination for
// the rest of the run (every receive fails with ErrDestinationLost). A nil
// injector changes nothing.
func (d *Destination) SetFaults(inj *faults.Injector) { d.faults = inj }

// SetHostName names the host this destination lives on (the fleet's move
// target). Host-scoped fault rules (host.crash, host.flaky) match against
// it; the empty default matches only unscoped rules, which is how single-VM
// runs see host faults.
func (d *Destination) SetHostName(name string) { d.host = name }

// HostName returns the destination's host identity ("" outside a fleet).
func (d *Destination) HostName() string { return d.host }

// Discard models tearing down the destination's half-received VM after an
// aborted migration: the memory image is released (zeroed) and the
// destination marked discarded. The crash flag resets so the host can serve
// a later re-attempt with a fresh image.
func (d *Destination) Discard() {
	d.discarded = true
	d.crashed = false
	d.PagesReceived = 0
	d.BytesReceived = 0
	if n := d.Store.NumPages(); n > 0 {
		d.Store = mem.NewVersionStore(n)
	}
	d.resetIntegrity()
	d.metrics.Counter("dest.discards").Inc()
}

// resetIntegrity clears the digest table and bumps the image generation:
// whatever a ResumeToken recorded about the previous image no longer applies.
func (d *Destination) resetIntegrity() {
	d.generation++
	d.rolling = 0
	if d.received != nil {
		d.received.ClearAll()
	}
	for i := range d.digests {
		d.digests[i] = 0
	}
}

// ensureIntegrity sizes the digest table to the store (receive paths call it
// so destinations built around caller-provided stores work too).
func (d *Destination) ensureIntegrity() {
	n := d.Store.NumPages()
	if d.received == nil || d.received.Len() != n {
		d.received = mem.NewBitmap(n)
		d.digests = make([]uint64, n)
	}
}

// Discarded reports whether the destination's image was rolled back by an
// aborted migration (and not rebuilt since).
func (d *Destination) Discarded() bool { return d.discarded }

// NewDestination returns a destination with zeroed memory of n pages,
// version-backed like the simulated source.
func NewDestination(n uint64) *Destination {
	return &Destination{Store: mem.NewVersionStore(n)}
}

// NewDestinationWithStore uses a caller-provided store (e.g. a byte-backed
// store in the TCP integration tests).
func NewDestinationWithStore(store mem.PageStore) *Destination {
	return &Destination{Store: store}
}

// ReceiveCheckpointPage imports a page pushed outside a migration — the
// replication package's checkpoint stream uses the same destination
// machinery (and Tee mirroring) as migration.
func (d *Destination) ReceiveCheckpointPage(p mem.PFN, payload []byte) error {
	return d.ReceivePage(p, payload)
}

// ReceivePage implements PageSink: import the page, account it, and mirror
// it onto the tee when one is attached. Fault injection can fail a receive
// transiently (dest.receive — the engine retries) or crash the destination
// for the rest of the run (dest.crash — permanent ErrDestinationLost).
func (d *Destination) ReceivePage(p mem.PFN, payload []byte) error {
	if d.crashed {
		return ErrDestinationLost
	}
	if d.faults.HostDown(d.host) {
		// The whole host died: like dest.crash, but window-scoped — a later
		// attempt (after Discard resets the image) can land on the same host
		// once the window passes.
		d.crashed = true
		return ErrDestinationLost
	}
	if d.faults.Fire(faults.SiteDestCrash) {
		d.crashed = true
		return ErrDestinationLost
	}
	if d.faults.HostFlaky(d.host) {
		return fmt.Errorf("migration: host %q refused page %d (flaky window)", d.host, p)
	}
	if d.faults.Fire(faults.SiteDestReceive) {
		return fmt.Errorf("migration: destination refused page %d (injected)", p)
	}
	if err := d.Store.Import(p, payload); err != nil {
		d.ImportFailures++
		d.metrics.Counter("dest.import_failures").Inc()
		return fmt.Errorf("migration: import page %d: %w", p, err)
	}
	d.PagesReceived++
	d.BytesReceived += uint64(len(payload))
	if uint64(p) < d.Store.NumPages() {
		d.ensureIntegrity()
		dg := mem.PageDigest(payload)
		d.digests[p] = dg
		d.received.Set(p)
		d.rolling = mem.MixDigest(d.rolling, p, dg)
	}
	d.metrics.Counter("dest.pages_received").Inc()
	d.metrics.Counter("dest.bytes_received").Add(int64(len(payload)))
	if d.tee != nil {
		if err := d.tee.WritePage(p, payload); err != nil {
			d.teeErrors++
			d.metrics.Counter("dest.tee_errors").Inc()
		}
	}
	return nil
}

// PageDigestAt implements DigestSink: the digest of the payload last
// received for p, or ok=false when p was never received into the current
// image.
func (d *Destination) PageDigestAt(p mem.PFN) (uint64, bool) {
	if d.received == nil || uint64(p) >= d.received.Len() || !d.received.Test(p) {
		return 0, false
	}
	return d.digests[p], true
}

// ReceivedPages returns the set of PFNs received into the current image.
// Callers must treat the bitmap as read-only.
func (d *Destination) ReceivedPages() *mem.Bitmap {
	d.ensureIntegrity()
	return d.received
}

// DigestSnapshot copies the per-PFN digest table (the ResumeToken payload).
func (d *Destination) DigestSnapshot() []uint64 {
	d.ensureIntegrity()
	return append([]uint64(nil), d.digests...)
}

// RollingDigest returns the run-level rolling summary of the receive
// sequence so far.
func (d *Destination) RollingDigest() uint64 { return d.rolling }

// Generation implements DigestSink: the image generation, bumped on every
// Discard. A ResumeToken minted against generation g is worthless against
// any other generation.
func (d *Destination) Generation() uint64 { return d.generation }

// VerifyMigration checks the migration correctness invariant (DESIGN.md §6):
// every page the destination may legally observe must carry the source's
// final content. required(p) reports whether page p's content matters after
// resume (typically: the frame is still allocated in the guest); pages with
// a cleared final transfer bit were declared skippable by their application
// and are exempt.
func VerifyMigration(src, dst mem.PageStore, finalTransfer *mem.Bitmap, required func(mem.PFN) bool) error {
	if src.NumPages() != dst.NumPages() {
		return fmt.Errorf("migration: page count mismatch: src %d dst %d", src.NumPages(), dst.NumPages())
	}
	var bad []mem.PFN
	for p := mem.PFN(0); uint64(p) < src.NumPages(); p++ {
		if !finalTransfer.Test(p) {
			continue // skipped by application consent
		}
		if required != nil && !required(p) {
			continue // e.g. freed frame: content irrelevant until rewritten
		}
		if src.Version(p) != dst.Version(p) {
			bad = append(bad, p)
			if len(bad) >= 8 {
				break
			}
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("migration: %d+ pages diverge at destination (first: %v)", len(bad), bad)
	}
	return nil
}
