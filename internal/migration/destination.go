package migration

import (
	"fmt"

	"javmm/internal/mem"
	"javmm/internal/netsim"
	"javmm/internal/obs"
)

// Destination is the receiving host's view of the migration: its own copy of
// the VM's memory. It is the default PageSink of every engine.
type Destination struct {
	Store          mem.PageStore
	PagesReceived  uint64
	BytesReceived  uint64
	ImportFailures int

	tee       *netsim.PageWriter
	teeErrors int
	metrics   *obs.Metrics
}

// SetMetrics attaches a metrics registry to the destination's receive path
// (dest.pages_received, dest.bytes_received, dest.import_failures,
// dest.tee_errors). A nil registry detaches.
func (d *Destination) SetMetrics(m *obs.Metrics) { d.metrics = m }

// NewDestination returns a destination with zeroed memory of n pages,
// version-backed like the simulated source.
func NewDestination(n uint64) *Destination {
	return &Destination{Store: mem.NewVersionStore(n)}
}

// NewDestinationWithStore uses a caller-provided store (e.g. a byte-backed
// store in the TCP integration tests).
func NewDestinationWithStore(store mem.PageStore) *Destination {
	return &Destination{Store: store}
}

// ReceiveCheckpointPage imports a page pushed outside a migration — the
// replication package's checkpoint stream uses the same destination
// machinery (and Tee mirroring) as migration.
func (d *Destination) ReceiveCheckpointPage(p mem.PFN, payload []byte) {
	d.ReceivePage(p, payload)
}

// ReceivePage implements PageSink: import the page, account it, and mirror
// it onto the tee when one is attached.
func (d *Destination) ReceivePage(p mem.PFN, payload []byte) {
	if err := d.Store.Import(p, payload); err != nil {
		d.ImportFailures++
		d.metrics.Counter("dest.import_failures").Inc()
		return
	}
	d.PagesReceived++
	d.BytesReceived += uint64(len(payload))
	d.metrics.Counter("dest.pages_received").Inc()
	d.metrics.Counter("dest.bytes_received").Add(int64(len(payload)))
	if d.tee != nil {
		if err := d.tee.WritePage(p, payload); err != nil {
			d.teeErrors++
			d.metrics.Counter("dest.tee_errors").Inc()
		}
	}
}

// VerifyMigration checks the migration correctness invariant (DESIGN.md §6):
// every page the destination may legally observe must carry the source's
// final content. required(p) reports whether page p's content matters after
// resume (typically: the frame is still allocated in the guest); pages with
// a cleared final transfer bit were declared skippable by their application
// and are exempt.
func VerifyMigration(src, dst mem.PageStore, finalTransfer *mem.Bitmap, required func(mem.PFN) bool) error {
	if src.NumPages() != dst.NumPages() {
		return fmt.Errorf("migration: page count mismatch: src %d dst %d", src.NumPages(), dst.NumPages())
	}
	var bad []mem.PFN
	for p := mem.PFN(0); uint64(p) < src.NumPages(); p++ {
		if !finalTransfer.Test(p) {
			continue // skipped by application consent
		}
		if required != nil && !required(p) {
			continue // e.g. freed frame: content irrelevant until rewritten
		}
		if src.Version(p) != dst.Version(p) {
			bad = append(bad, p)
			if len(bad) >= 8 {
				break
			}
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("migration: %d+ pages diverge at destination (first: %v)", len(bad), bad)
	}
	return nil
}
