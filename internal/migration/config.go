package migration

import (
	"time"

	"javmm/internal/faults"
	"javmm/internal/mem"
	"javmm/internal/obs"
	"javmm/internal/obs/ledger"
	"javmm/internal/obs/perf"
)

// GuestExecutor runs guest activity for a span of virtual time. The
// implementation must advance the source clock by exactly d, performing the
// guest's memory writes, GCs and op completions along the way. This is the
// interleaving that races the guest's dirtying rate against the migration
// link (Figure 1).
type GuestExecutor interface {
	Run(d time.Duration)
}

// Throttleable is optionally implemented by executors that support Clark-
// style write throttling (paper §2: slow down dirtying by stalling write-
// heavy processes). Factor 1.0 is full speed.
type Throttleable interface {
	SetThrottle(factor float64)
}

// Config tunes the engine. The zero value plus FillDefaults matches the
// paper's testbed: Xen defaults over gigabit Ethernet.
type Config struct {
	Mode Mode

	// MaxIterations forces stop-and-copy after this many live iterations
	// (Xen default 30, the cap the paper's Figure 8(a) run hits).
	MaxIterations int
	// DirtyPageThreshold enters stop-and-copy once the pending dirty set
	// (intersected with the transfer bitmap) is at most this many pages
	// (Xen uses 50).
	DirtyPageThreshold uint64
	// MaxTrafficFactor aborts pre-copy once total traffic exceeds this
	// multiple of VM memory. Xen's xc_domain_save default is 3; zero
	// selects that default and a negative value disables the cap.
	MaxTrafficFactor float64
	// ChunkPages is the transfer granularity at which the engine
	// interleaves guest execution with page pushes. Default 1024 pages
	// (4 MiB ≈ 34 ms on gigabit).
	ChunkPages uint64
	// ResumptionTime models reconnecting devices and activating the VM at
	// the destination; the paper measures ~170 ms (§5.3).
	ResumptionTime time.Duration

	// PageExamineCost and PageCopyCost model the daemon's CPU time per
	// page considered and per page actually sent; used for the §5.3 CPU
	// comparison (X1).
	PageExamineCost time.Duration
	PageCopyCost    time.Duration

	// Compress enables the §6 extension: pages that are not skipped are
	// compressed before transmission. CompressionRatio is the modelled
	// wire-size factor in (0,1]; CompressCostPerPage is daemon CPU per
	// compressed page.
	Compress            bool
	CompressionRatio    float64
	CompressCostPerPage time.Duration

	// DeltaCompression enables the XBZRLE-style baseline of Svärd et al.
	// (paper §2): the daemon keeps a cache of previously-sent pages and
	// transmits only the delta when a page is resent. Attacks exactly the
	// repeated-resend problem JAVMM removes at the source — ablation X13
	// compares them. DeltaRatio is the modelled wire factor for a resend
	// (default 0.15); DeltaCostPerPage is the daemon CPU per delta encode.
	// Report.DeltaCacheBytes carries the daemon-side cache cost (one full
	// page copy per VM page).
	DeltaCompression bool
	DeltaRatio       float64
	DeltaCostPerPage time.Duration

	// HintedCompression refines Compress with the per-page hints the LKM
	// collects from applications (§6: "multiple bits per VM memory page to
	// indicate the suitable compression methods"). Requires Source.HintFor.
	// Hinted-strong pages compress harder, hinted-none pages go raw with
	// zero CPU.
	HintedCompression bool

	// ThrottleFactor, if in (0,1), applies Clark-style write throttling to
	// the guest while migration cannot keep up with dirtying (baseline of
	// paper §2).
	ThrottleFactor float64

	// IdleQuantum paces the engine's waiting loop while the LKM prepares
	// applications for suspension.
	IdleQuantum time.Duration

	// SuspensionBackstop bounds the engine-side wait for the guest to
	// become suspension-ready after the prepare notification. The LKM's own
	// PrepareTimeout normally resolves stragglers first; this is the hard
	// backstop against a misconfigured (disabled) timeout. Default one
	// minute.
	SuspensionBackstop time.Duration

	// HybridWarmIterations is the number of pre-copy warm rounds a
	// ModeHybrid migration runs before the post-copy switchover (default 3:
	// one full pass plus two dirty rounds).
	HybridWarmIterations int

	// ConservativeLastIter makes the stop-and-copy iteration consider
	// every page dirtied at any point during migration, not just the
	// final round. Required when the LKM runs its full-rewalk final
	// update (guestos.LKMConfig.FinalUpdateRewalk), which learns about
	// shrunk skip-over areas only at the end (paper §3.3.4, the deferred
	// alternative design).
	ConservativeLastIter bool

	// OnIteration, if non-nil, is invoked after each completed iteration
	// with its statistics — live progress for tools (like `xl migrate`'s
	// console output). It is the legacy form of the event bus below: with a
	// Tracer configured the engine registers OnIteration as a subscription
	// to the obs.KindIterationStats events it emits, so both surfaces see
	// identical data.
	OnIteration func(IterationStats)

	// OnProgress, if non-nil, receives the live progress stream: a typed
	// Progress point at every lifecycle transition (start, each pre-copy
	// round, prepare, stop-and-copy, post-copy switchover, done/aborted)
	// carrying cumulative pages/bytes, the outstanding estimate, observed
	// dirty/transfer rates and the clamped ETA. Like OnIteration it rides
	// the event bus when a Tracer is configured (obs.KindProgress instants),
	// so both surfaces see identical data.
	OnProgress func(Progress)

	// Tracer, if non-nil, receives the engine's structured trace: a span
	// per migration run, per iteration and per page-chunk push, the
	// pre-suspension handshake, the final bitmap update, suspension and
	// resumption, and an instant event per completed iteration carrying
	// IterationStats as its Data payload. All timestamps are virtual.
	Tracer *obs.Tracer

	// Metrics, if non-nil, accumulates the engine's counters
	// (migration.pages_examined, .pages_sent, .pages_skipped_*,
	// .bytes_on_wire, ...). The totals reconcile exactly with the Report of
	// the same run.
	Metrics *obs.Metrics

	// Ledger, if non-nil, records per-page provenance: every page push is
	// tagged with its iteration, wire bytes and send class, and every skip
	// with its reason. The engine calls Begin on it when migration starts,
	// so the ledger always describes the most recent run; its totals
	// reconcile exactly with the Report (attrib.Build checks this).
	Ledger *ledger.Ledger

	// Perf, if non-nil, is the real-clock stage profiler: every bound stage
	// is wrapped so its wall time and allocations are attributed to the
	// perf.Stage taxonomy (see perfstages.go). Unlike Tracer/Metrics/Ledger,
	// which run on the virtual clock and are part of the deterministic
	// contract, Perf measures the simulator itself and MUST NOT change any
	// report — the bench harness asserts that transparency every run.
	Perf *perf.Profiler

	// SkipFreePages enables the OS-assisted baseline of Koto et al.
	// (paper §1/§2): pages the guest kernel holds on its free list are not
	// transferred. Requires Source.GuestFree. The paper's assessment —
	// "skipping free pages may only benefit the migration of
	// lightly-loaded VMs" — is what ablation X12 measures.
	SkipFreePages bool

	// CancelAfter aborts the migration once it has run for this much
	// virtual time without reaching stop-and-copy. Pre-copy is naturally
	// abortable: the source VM has kept running throughout, so an abort
	// just tears down dirty tracking and tells the guest the migration is
	// over. Zero disables the deadline.
	CancelAfter time.Duration
	// ShouldCancel, if non-nil, is polled at chunk boundaries; returning
	// true aborts like CancelAfter.
	ShouldCancel func() bool

	// Faults, if non-nil, is the fault-injection plane consulted by the
	// engine's own injection sites (destination receive/crash, post-copy
	// fetch). The engine arms it (Begin) when migration starts, so rule
	// times are relative to migration start. The link, netlink bus and LKM
	// each carry their own reference to the same injector.
	Faults *faults.Injector

	// Recovery tunes the engine's robustness layer: retry/backoff on
	// transient stage failures, the per-stage deadline, and the handshake
	// degradation switch. The zero value plus FillDefaults is the paper-
	// plausible policy (retry for a few seconds, then abort cleanly).
	Recovery Recovery

	// Integrity tunes the end-to-end page-integrity plane: every transfer is
	// digested at both ends and switchover audits the destination's table
	// against the source's expectation, repairing mismatches by bounded
	// re-fetch. On by default (zero value); Disable exists for ablation and
	// for the chaos harness's planted-bug mode.
	Integrity Integrity
}

// Integrity is the end-to-end verification policy.
type Integrity struct {
	// Disable turns the switchover digest audit (and post-copy per-fetch
	// verification) off. Transfers are still digested — the ResumeToken
	// needs the table — but mismatches go undetected, exactly the failure
	// mode the chaos search plants to prove it can find invariant bugs.
	Disable bool
	// MaxRepairRounds bounds the audit's repair loop: each round re-fetches
	// every mismatched page and re-audits. Exhausting the budget aborts the
	// run with ErrIntegrity (default 3).
	MaxRepairRounds int
}

// fillDefaults populates the unset integrity knobs.
func (i *Integrity) fillDefaults() {
	if i.MaxRepairRounds == 0 {
		i.MaxRepairRounds = 3
	}
}

// Recovery is the engine's failure policy. Backoff is exponential with
// seeded jitter: attempt k waits a uniformly random duration in
// [base·2ᵏ⁻¹/2, base·2ᵏ⁻¹], capped at MaxBackoff, drawn from a PRNG seeded
// with Seed — fully deterministic under the virtual clock.
type Recovery struct {
	// MaxRetries bounds the re-attempts of one failed stage operation
	// (default 10; with the default backoff that is ≈6.5s of cumulative
	// waiting, enough to ride out a short partition).
	MaxRetries int
	// BaseBackoff is the first retry's backoff ceiling (default 10ms).
	BaseBackoff time.Duration
	// MaxBackoff caps a single backoff (default 2s).
	MaxBackoff time.Duration
	// StageDeadline bounds the total virtual time one stage operation may
	// spend failing and backing off before the run aborts (default 60s).
	StageDeadline time.Duration
	// Seed seeds the jitter PRNG (default 1). Different seeds produce
	// different backoff schedules; the same seed reproduces the run
	// byte-for-byte.
	Seed int64
	// DisableDegrade keeps a ModeAppAssisted run from downgrading to
	// vanilla pre-copy when the suspension handshake times out: the run
	// fails with ErrSuspensionTimeout instead. Degradation is only
	// considered when Config.Faults is set, so fault-free runs keep the
	// strict timeout contract either way.
	DisableDegrade bool
	// EnableResume keeps the destination's partially-received image alive
	// across a failed run instead of discarding it, so the ResumeToken
	// minted by the abort can seed a cheaper Source.Resume. A destination
	// that crashed (ErrDestinationLost) is still discarded — its image
	// cannot be trusted and resume degrades to a full first copy.
	EnableResume bool
}

// fillDefaults populates the unset recovery knobs.
func (r *Recovery) fillDefaults() {
	if r.MaxRetries == 0 {
		r.MaxRetries = 10
	}
	if r.BaseBackoff == 0 {
		r.BaseBackoff = 10 * time.Millisecond
	}
	if r.MaxBackoff == 0 {
		r.MaxBackoff = 2 * time.Second
	}
	if r.StageDeadline == 0 {
		r.StageDeadline = 60 * time.Second
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
}

// FillDefaults populates unset fields with the paper's testbed defaults.
func (c *Config) FillDefaults() {
	if c.MaxIterations == 0 {
		c.MaxIterations = 30
	}
	if c.DirtyPageThreshold == 0 {
		c.DirtyPageThreshold = 50
	}
	if c.MaxTrafficFactor == 0 {
		c.MaxTrafficFactor = 3.0
	}
	if c.ChunkPages == 0 {
		c.ChunkPages = 1024
	}
	if c.ResumptionTime == 0 {
		c.ResumptionTime = 170 * time.Millisecond
	}
	if c.PageExamineCost == 0 {
		c.PageExamineCost = 200 * time.Nanosecond
	}
	if c.PageCopyCost == 0 {
		c.PageCopyCost = 2 * time.Microsecond
	}
	if c.Compress && c.CompressionRatio == 0 {
		c.CompressionRatio = 0.45
	}
	if c.Compress && c.CompressCostPerPage == 0 {
		c.CompressCostPerPage = 8 * time.Microsecond
	}
	if c.DeltaCompression && c.DeltaRatio == 0 {
		c.DeltaRatio = 0.15
	}
	if c.DeltaCompression && c.DeltaCostPerPage == 0 {
		c.DeltaCostPerPage = 5 * time.Microsecond
	}
	if c.IdleQuantum == 0 {
		c.IdleQuantum = time.Millisecond
	}
	if c.SuspensionBackstop == 0 {
		c.SuspensionBackstop = time.Minute
	}
	if c.HybridWarmIterations == 0 {
		c.HybridWarmIterations = 3
	}
	c.Recovery.fillDefaults()
	c.Integrity.fillDefaults()
}

// IterationStats describes one migration iteration — the boxes of Figure 8
// and the stacked bars of Figure 9.
type IterationStats struct {
	Index    int
	Start    time.Duration // virtual time at iteration start
	Duration time.Duration
	Last     bool // the stop-and-copy iteration

	PagesConsidered    uint64 // size of the round's to-send set
	PagesSent          uint64
	BytesOnWire        uint64
	PagesSkippedDirty  uint64 // re-dirtied mid-round, deferred to next round
	PagesSkippedBitmap uint64 // transfer bit cleared (e.g. young gen)
	PagesSkippedFree   uint64 // on the guest's free list (SkipFreePages)
	PagesDirtiedDuring uint64 // new dirtying while this iteration ran
}

// TransferRate returns the iteration's payload rate in bytes/sec.
func (s IterationStats) TransferRate() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(s.BytesOnWire) / s.Duration.Seconds()
}

// DirtyRate returns the guest dirtying rate during the iteration in
// pages/sec.
func (s IterationStats) DirtyRate() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(s.PagesDirtiedDuring) / s.Duration.Seconds()
}

// Report is the outcome of one migration.
type Report struct {
	Mode       Mode
	Iterations []IterationStats

	TotalTime   time.Duration // migrate start to VM active at destination
	VMDowntime  time.Duration // VM paused (stop-and-copy + resumption)
	PrepareWait time.Duration // LKM prepare handshake (safepoint + GC wait)
	FinalUpdate time.Duration // final transfer bitmap update (downtime part)
	Resumption  time.Duration

	TotalPagesSent uint64
	LastIterBytes  uint64

	// DeltaResends counts pages sent as deltas and DeltaCacheBytes the
	// daemon-side page cache cost (DeltaCompression runs only).
	DeltaResends    uint64
	DeltaCacheBytes uint64
	CPUTime         time.Duration // daemon CPU model (X1)
	Fallbacks       int           // apps that timed out during prepare

	// FinalTransfer is the transfer bitmap snapshot at VM pause: set bits
	// are the pages the destination must have faithfully. Vanilla
	// migrations have every bit set.
	FinalTransfer *mem.Bitmap

	// PostCopy is set for runs with a post-copy phase (ModePostCopy,
	// ModeHybrid). Post-copy semantics differ: the domain's memory IS the
	// destination memory after switchover, so Dest.Store is a transport
	// record and the correctness invariant is "every page became
	// resident", not store equality.
	PostCopy *PostCopyStats

	// Recovery is set when the robustness layer acted: retries performed,
	// a mid-flight degradation, or a clean abort. Fault-free runs leave it
	// nil, so existing reports are unchanged byte for byte.
	Recovery *RecoveryStats

	// Integrity is the switchover digest audit's account: pages audited,
	// mismatches found and repaired. Set whenever the audit ran (nil when
	// the sink carries no digests, the audit is disabled, or the run aborted
	// before switchover).
	Integrity *IntegrityStats

	// Resume is set on runs started by Source.Resume: how much of the
	// token's destination state was trusted and how much had to move again.
	Resume *ResumeStats
}

// IntegrityStats is the Report's account of the end-to-end digest audit.
type IntegrityStats struct {
	// PagesAudited is how many destination pages the switchover audit
	// checked against the source's expectation.
	PagesAudited uint64
	// AuditRounds is how many audit passes ran (1 on a clean run; one extra
	// per repair round).
	AuditRounds int
	// Mismatches counts digest mismatches detected across all rounds.
	Mismatches uint64
	// Repairs counts pages re-fetched to heal a mismatch; RepairBytes their
	// wire traffic (also folded into the stop-and-copy iteration, so totals
	// still reconcile).
	Repairs     uint64
	RepairBytes uint64
	// RollingDigest is the destination's receive-sequence summary at the
	// time the audit passed.
	RollingDigest uint64
}

// ResumeStats is the Report's account of what a resumed run reused.
type ResumeStats struct {
	// TrustedPages were proven intact at the destination (received, digest
	// match, not dirtied since the token's epoch) and not re-sent.
	TrustedPages uint64
	// RefetchPages were queued for transfer because the token could not
	// vouch for them (dirtied since the epoch, digest mismatch, or never
	// received); the ledger tags their sends resume-refetch.
	RefetchPages uint64
	// SavedBytes is the raw first-copy volume the trusted pages avoided.
	SavedBytes uint64
	// FullFirstCopy is true when the token could not be trusted at all
	// (stale generation, crashed destination, lost dirty epoch) and the run
	// degraded to a from-scratch first copy.
	FullFirstCopy bool
	// Reason explains the trust decision in one phrase.
	Reason string
	// TokenEpoch is the dirty epoch the token carried.
	TokenEpoch uint64
}

// RecoveryStats is the Report's account of the robustness layer's work.
// Slices (not maps) keep reports deterministically comparable.
type RecoveryStats struct {
	// Retries lists every backed-off re-attempt, in order.
	Retries []RetryRecord
	// BackoffTotal is the virtual time spent waiting between attempts.
	BackoffTotal time.Duration
	// Degraded is set when the run downgraded mid-flight (assisted pre-copy
	// falling back to vanilla semantics after a failed handshake).
	Degraded *Degradation
	// Aborted is true when the run failed and rolled back: source resumed,
	// destination discarded (or, with Recovery.EnableResume, kept for a
	// later Resume).
	Aborted     bool
	AbortReason string
	// Token is the resume credential minted by the abort (EnableResume
	// runs, and cancellations, which always leave the destination intact).
	Token *ResumeToken
}

// RetryRecord is one backed-off re-attempt of a failed stage operation.
type RetryRecord struct {
	Stage   string        // which operation failed (chunk-send, page-receive, ...)
	Attempt int           // 1-based attempt number being retried
	At      time.Duration // virtual time the backoff started
	Backoff time.Duration
	Err     string // the error that triggered the retry
}

// Degradation records a mid-flight downgrade (paper §4.2's non-responsive
// contingency: a wedged JVM/LKM handshake must not wedge the migration).
type Degradation struct {
	From   Mode
	To     Mode
	At     time.Duration // virtual time of the downgrade
	Reason string
}

// EffectiveMode returns the semantics the migration actually completed
// with: the requested mode, unless the run degraded mid-flight. Downtime
// attribution keys on this — a degraded run's enforced GC is not charged as
// assisted-migration downtime because the migration finished with vanilla
// semantics.
func (r *Report) EffectiveMode() Mode {
	if r.Recovery != nil && r.Recovery.Degraded != nil {
		return r.Recovery.Degraded.To
	}
	return r.Mode
}

// TotalBytes returns the migration's total payload traffic.
func (r *Report) TotalBytes() uint64 {
	var t uint64
	for _, it := range r.Iterations {
		t += it.BytesOnWire
	}
	return t
}

// LiveIterations returns the number of pre-copy iterations (excluding
// stop-and-copy).
func (r *Report) LiveIterations() int {
	n := 0
	for _, it := range r.Iterations {
		if !it.Last {
			n++
		}
	}
	return n
}
