// Package experiments regenerates every table and figure of the paper's
// evaluation (§4.2 and §5) plus the §6 extension ablations. Each runner
// boots fresh VMs, warms the workload to its steady state, migrates it over
// a simulated gigabit link and reduces the results into printable tables and
// series. DESIGN.md §5 maps each experiment ID to its runner and benchmark.
package experiments

import (
	"fmt"
	"time"

	"javmm/internal/faults"
	"javmm/internal/jvm"
	"javmm/internal/mem"
	"javmm/internal/migration"
	"javmm/internal/netsim"
	"javmm/internal/obs"
	"javmm/internal/obs/attrib"
	"javmm/internal/obs/ledger"
	"javmm/internal/workload"
)

// RunOpts parameterizes one migration experiment.
type RunOpts struct {
	Profile workload.Profile
	Mode    migration.Mode
	Seed    int64

	// MemBytes is the VM size (default 2 GiB, the paper's testbed).
	MemBytes uint64
	// Bandwidth is the migration link's payload bandwidth (default
	// gigabit-effective).
	Bandwidth uint64
	// Warmup is how long the workload runs before migration begins
	// (paper: 300 s, halfway through a 10-minute run).
	Warmup time.Duration
	// Cooldown keeps the workload running after migration so throughput
	// timelines capture the recovery (Figure 11).
	Cooldown time.Duration

	// MaxYoungOverride caps the young generation (Table 3 sweeps).
	MaxYoungOverride uint64

	// LKMRewalk selects the LKM's full-rewalk final update; pairs with the
	// engine's conservative last iteration (ablation X5).
	LKMRewalk bool

	// ALBShrinkTo, when non-zero, applies Application-Level Ballooning
	// after warmup: the young generation is shrunk toward this size and
	// held there through the migration (ablation X6, the §2 baseline).
	ALBShrinkTo uint64

	// Collector selects the garbage collector (workload.CollectorParallel
	// default, workload.CollectorG1 for the regional heap) and
	// AgentReReport overrides the agent's per-GC re-reporting (X11).
	Collector     string
	AgentReReport *bool

	// Engine extensions under ablation.
	Compress       bool
	HintedCompress bool // per-page hints from the agent (§6, X2)
	ThrottleFactor float64
	SkipFreePages  bool
	// MigrationConfig tweaks beyond the defaults; Mode/Compress/Throttle
	// fields above win.
	EngineConfig *migration.Config

	// Tracer and Metrics, when non-nil, observe the run: they are attached
	// to every instrumented layer of the booted VM and threaded through the
	// migration engine, so one experiment produces one coherent trace.
	Tracer  *obs.Tracer
	Metrics *obs.Metrics
	// Ledger, when non-nil, records the run's per-page provenance and
	// enables the Attribution carried on the Run.
	Ledger *ledger.Ledger

	// FaultPlan, when non-empty, injects faults into every layer of the run
	// (resilience experiments); RecoverySeed seeds the retry backoff jitter.
	FaultPlan    faults.Plan
	RecoverySeed int64
	// AllowAbort tolerates a fault-aborted migration: instead of an error,
	// RunMigration returns the Run with Aborted set and the partial report
	// (source resumed, destination discarded).
	AllowAbort bool
	// ResumeAfterAbort (implies AllowAbort) enables the resume plane on the
	// run: an abort keeps the destination image, mints a ResumeToken, and
	// RunMigration then resumes the migration fault-free from the token.
	// The continuation's report lands in Run.ResumeReport.
	ResumeAfterAbort bool
}

func (o *RunOpts) fillDefaults() {
	if o.MemBytes == 0 {
		o.MemBytes = 2 << 30
	}
	if o.Bandwidth == 0 {
		o.Bandwidth = netsim.GigabitEffective
	}
	if o.Warmup == 0 {
		o.Warmup = 300 * time.Second
	}
}

// Run is the outcome of one migration experiment: the engine report plus the
// guest-side observations the figures need.
type Run struct {
	Opts   RunOpts
	Report *migration.Report

	// Heap state observed when migration began (Table 2 / Table 3).
	YoungCommittedAtMigration uint64
	OldUsedAtMigration        uint64

	// EnforcedGC is the duration of the JAVMM-enforced collection (zero
	// for vanilla runs).
	EnforcedGC time.Duration

	// WorkloadDowntime is the paper's §5.3 downtime: stop-and-copy and
	// resumption, plus — for JAVMM — the enforced GC and the final bitmap
	// update, during which Java threads are paused.
	WorkloadDowntime time.Duration

	// Samples is the full per-second throughput timeline (Figure 11).
	Samples []workload.Sample
	// MigrationStartSecond is the timeline second at which migration began.
	MigrationStartSecond int

	// LKMBitmapBytes and LKMCacheBytes are the framework's memory overhead
	// (§5.3: at most 1 MB).
	LKMBitmapBytes, LKMCacheBytes uint64

	// VerifyErr is the migration-correctness check outcome (nil = pages
	// match at the destination).
	VerifyErr error

	// AgentReReports counts the agent's mid-migration skip-area re-reports
	// and AgentGrowReports its immediate young-growth reports (non-zero
	// only for region-churning collectors with re-reporting on).
	AgentReReports   int
	AgentGrowReports int

	// Attribution is the reconciled downtime/traffic accounting of the
	// run, always present (the per-reason ledger breakdown only when
	// RunOpts.Ledger was set). RunMigration fails if it does not reconcile
	// with the Report — figures must not be built from numbers that do not
	// add up.
	Attribution *attrib.Attribution

	// Aborted marks a fault-aborted run (only with RunOpts.AllowAbort);
	// AbortReason carries the permanent failure behind it.
	Aborted     bool
	AbortReason string
	// FaultEvents is the injector's audit log of faults that fired.
	FaultEvents []faults.Event

	// ResumeReport is the continuation's report when ResumeAfterAbort
	// resumed an aborted run (nil when the run completed outright), and
	// ResumeVerifyErr its destination-consistency outcome.
	ResumeReport    *migration.Report
	ResumeVerifyErr error
}

// RunMigration boots a fresh VM, warms it up, migrates it and returns the
// combined observations.
func RunMigration(opts RunOpts) (*Run, error) {
	opts.fillDefaults()
	prof := opts.Profile
	if opts.MaxYoungOverride != 0 {
		prof.MaxYoungBytes = opts.MaxYoungOverride
		if prof.InitialYoungBytes > prof.MaxYoungBytes {
			prof.InitialYoungBytes = prof.MaxYoungBytes
		}
	}

	vm, err := workload.Boot(workload.BootConfig{
		MemBytes:      opts.MemBytes,
		Profile:       prof,
		Assisted:      opts.Mode == migration.ModeAppAssisted,
		Seed:          opts.Seed,
		LKMRewalk:     opts.LKMRewalk,
		Collector:     opts.Collector,
		AgentReReport: opts.AgentReReport,
		AgentHints:    opts.HintedCompress,
	})
	if err != nil {
		return nil, err
	}
	if opts.Tracer != nil || opts.Metrics != nil {
		vm.AttachObs(opts.Tracer, opts.Metrics)
	}

	vm.Driver.Run(opts.Warmup)
	if vm.Driver.Err != nil {
		return nil, fmt.Errorf("experiments: warmup failed: %w", vm.Driver.Err)
	}
	if opts.ALBShrinkTo > 0 {
		if vm.JVM == nil {
			return nil, fmt.Errorf("experiments: ALB requires the parallel collector")
		}
		// Balloon the heap down and give the workload a few GC cycles for
		// the shrink to take effect before migration begins.
		vm.JVM.ALBShrink(opts.ALBShrinkTo)
		vm.Driver.Run(15 * time.Second)
		if vm.Driver.Err != nil {
			return nil, fmt.Errorf("experiments: ALB shrink failed: %w", vm.Driver.Err)
		}
	}

	run := &Run{
		Opts:                      opts,
		YoungCommittedAtMigration: vm.Heap.YoungCommitted(),
		OldUsedAtMigration:        vm.Heap.OldUsed(),
		MigrationStartSecond:      int(vm.Clock.Now() / time.Second),
	}

	cfg := migration.Config{}
	if opts.EngineConfig != nil {
		cfg = *opts.EngineConfig
	}
	cfg.Mode = opts.Mode
	if opts.Compress {
		cfg.Compress = true
	}
	if opts.ThrottleFactor != 0 {
		cfg.ThrottleFactor = opts.ThrottleFactor
	}
	if opts.LKMRewalk {
		cfg.ConservativeLastIter = true
	}
	if opts.SkipFreePages {
		cfg.SkipFreePages = true
	}
	if opts.HintedCompress {
		cfg.HintedCompression = true
	}
	if opts.Tracer != nil {
		cfg.Tracer = opts.Tracer
	}
	if opts.Metrics != nil {
		cfg.Metrics = opts.Metrics
	}
	if opts.Ledger != nil {
		cfg.Ledger = opts.Ledger
	}
	var inj *faults.Injector
	if len(opts.FaultPlan) > 0 {
		inj, err = faults.NewInjector(vm.Clock, opts.FaultPlan)
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		inj.SetObs(opts.Tracer, opts.Metrics)
		cfg.Faults = inj
		cfg.Recovery.Seed = opts.RecoverySeed
		vm.Guest.LKM.SetFaults(inj)
		vm.Guest.Bus.SetFaults(inj)
	}
	if opts.ResumeAfterAbort {
		if opts.Ledger != nil {
			// One ledger cannot serve two runs: the continuation's sends
			// would land on top of the aborted run's and break the
			// attribution reconciliation against the first report.
			return nil, fmt.Errorf("experiments: ResumeAfterAbort is incompatible with a shared Ledger")
		}
		opts.AllowAbort = true
		cfg.Recovery.EnableResume = true
	}
	link := netsim.NewLink(vm.Clock, opts.Bandwidth, 100*time.Microsecond)
	link.SetMetrics(opts.Metrics)
	link.SetFaults(inj)
	dest := migration.NewDestination(vm.Dom.NumPages())
	dest.SetFaults(inj)

	src := &migration.Source{
		Dom:   vm.Dom,
		LKM:   vm.Guest.LKM,
		Link:  link,
		Clock: vm.Clock,
		Exec:  vm.Driver,
		Dest:  dest,
		Cfg:   cfg,
		GuestFree: func(p mem.PFN) bool {
			return !vm.Guest.Frames.Allocated(p)
		},
		HintFor: vm.Guest.LKM.HintFor,
	}
	report, err := src.Migrate()
	aborted := false
	if err != nil {
		if !opts.AllowAbort || report == nil || report.Recovery == nil || !report.Recovery.Aborted {
			return nil, fmt.Errorf("experiments: migration failed: %w", err)
		}
		aborted = true
	}
	if vm.Driver.Err != nil {
		return nil, fmt.Errorf("experiments: workload failed during migration: %w", vm.Driver.Err)
	}
	run.Report = report
	run.Aborted = aborted
	if aborted {
		run.AbortReason = report.Recovery.AbortReason
	}
	run.FaultEvents = inj.Events()

	if aborted && opts.ResumeAfterAbort {
		tok := report.Recovery.Token
		if tok == nil {
			return nil, fmt.Errorf("experiments: abort (%s) minted no resume token", run.AbortReason)
		}
		// Detach the injector everywhere and let the guest run on: the
		// continuation is fault-free and pays only for what the token
		// cannot vouch for.
		link.SetFaults(nil)
		dest.SetFaults(nil)
		vm.Guest.LKM.SetFaults(nil)
		vm.Guest.Bus.SetFaults(nil)
		src.Cfg.Faults = nil
		vm.Driver.Run(2 * time.Second)
		if vm.Driver.Err != nil {
			return nil, fmt.Errorf("experiments: workload failed between abort and resume: %w", vm.Driver.Err)
		}
		rrep, rerr := src.Resume(tok)
		if rerr != nil {
			return nil, fmt.Errorf("experiments: resume after abort failed: %w", rerr)
		}
		run.ResumeReport = rrep
		if rrep.PostCopy == nil {
			run.ResumeVerifyErr = migration.VerifyMigration(
				vm.Dom.Store(), src.Dest.Store, rrep.FinalTransfer,
				func(p mem.PFN) bool { return vm.Guest.Frames.Allocated(p) })
		}
	}

	// Runs with a post-copy phase have no store-equality counterpart: the
	// guest keeps running (and dirtying) after switchover, and the engine's
	// demand-fetch path guarantees residency by construction. Aborted runs
	// discarded the destination — there is nothing to verify.
	if report.PostCopy == nil && !aborted {
		run.VerifyErr = migration.VerifyMigration(
			vm.Dom.Store(), src.Dest.Store, report.FinalTransfer,
			func(p mem.PFN) bool { return vm.Guest.Frames.Allocated(p) })
	}

	// Pull the enforced-GC duration from the collector's history.
	hist := vm.Heap.GCHistory()
	for i := len(hist) - 1; i >= 0; i-- {
		if st := hist[i]; st.Enforced {
			run.EnforcedGC = st.Duration
			break
		}
	}
	run.WorkloadDowntime = report.VMDowntime
	// Keyed on the EFFECTIVE mode: a run degraded to vanilla pre-copy never
	// performed the final update and charges neither assisted component.
	if report.EffectiveMode() == migration.ModeAppAssisted {
		run.WorkloadDowntime += run.EnforcedGC + report.FinalUpdate
	}

	run.Attribution = attrib.Build(report, run.EnforcedGC, opts.Ledger)
	if err := run.Attribution.Reconcile(report); err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}

	run.LKMBitmapBytes = vm.Guest.LKM.BitmapBytes()
	run.LKMCacheBytes = vm.Guest.LKM.CacheBytes()
	if vm.Agent != nil {
		run.AgentReReports = vm.Agent.ReReports
		run.AgentGrowReports = vm.Agent.GrowReports
	}

	if opts.Cooldown > 0 {
		vm.Driver.Run(opts.Cooldown)
		if vm.Driver.Err != nil {
			return nil, fmt.Errorf("experiments: cooldown failed: %w", vm.Driver.Err)
		}
	}
	run.Samples = vm.Driver.Samples()
	return run, nil
}

// HeapProfile is the no-migration profiling run behind Figure 5 and §4.2.
type HeapProfile struct {
	Workload string

	AvgYoungCommitted uint64 // Figure 5(a), Young bar
	AvgOldUsed        uint64 // Figure 5(a), Old bar

	AvgGarbagePerGC uint64  // Figure 5(b)
	AvgLivePerGC    uint64  // Figure 5(b)
	GarbageFraction float64 // garbage / (garbage+live)

	AvgMinorGCDuration time.Duration // Figure 5(c)
	MinorGCs           int
	GCIntervalSeconds  float64 // mean seconds between minor GCs
}

// ProfileHeap runs a workload for the given duration in a VM (no migration)
// and reduces its heap behaviour, sampling consumption once per virtual
// second as the paper's profiling does.
func ProfileHeap(prof workload.Profile, dur time.Duration, memBytes uint64, seed int64) (*HeapProfile, error) {
	if memBytes == 0 {
		memBytes = 2 << 30
	}
	vm, err := workload.Boot(workload.BootConfig{
		MemBytes: memBytes,
		Profile:  prof,
		Seed:     seed,
	})
	if err != nil {
		return nil, err
	}

	var youngSum, oldSum, n uint64
	for vm.Clock.Now() < dur {
		vm.Driver.Run(time.Second)
		if vm.Driver.Err != nil {
			return nil, fmt.Errorf("experiments: profiling %s: %w", prof.Name, vm.Driver.Err)
		}
		youngSum += vm.Heap.YoungCommitted()
		oldSum += vm.Heap.OldUsed()
		n++
	}

	hp := &HeapProfile{Workload: prof.Name}
	if n > 0 {
		hp.AvgYoungCommitted = youngSum / n
		hp.AvgOldUsed = oldSum / n
	}
	var garbage, live, gcs uint64
	var gcTime time.Duration
	var firstGC, lastGC time.Duration
	for _, st := range vm.Heap.GCHistory() {
		if st.Kind != jvm.MinorGC {
			continue
		}
		garbage += st.Garbage
		live += st.LiveAfter + st.Promoted
		gcTime += st.Duration
		if gcs == 0 {
			firstGC = st.At
		}
		lastGC = st.At
		gcs++
	}
	hp.MinorGCs = int(gcs)
	if gcs > 0 {
		hp.AvgGarbagePerGC = garbage / gcs
		hp.AvgLivePerGC = live / gcs
		hp.AvgMinorGCDuration = gcTime / time.Duration(gcs)
		if total := garbage + live; total > 0 {
			hp.GarbageFraction = float64(garbage) / float64(total)
		}
	}
	if gcs > 1 {
		hp.GCIntervalSeconds = (lastGC - firstGC).Seconds() / float64(gcs-1)
	}
	return hp, nil
}
