package experiments

import (
	"fmt"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"javmm/internal/faults"
	"javmm/internal/fleet"
	"javmm/internal/migration"
	"javmm/internal/workload"
)

// fastOpts keeps test runtimes reasonable while preserving the steady-state
// heap shapes (category-1 young generations saturate well before 120 s).
func fastOpts() Options {
	return Options{
		Warmup:     120 * time.Second,
		Cooldown:   40 * time.Second,
		Seeds:      []int64{1},
		ProfileDur: 60 * time.Second,
	}
}

func mustLookup(t *testing.T, name string) workload.Profile {
	t.Helper()
	p, err := workload.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPaperShapeDerby asserts the paper's headline result at full scale:
// JAVMM migrates the derby VM with far less time, traffic and downtime than
// vanilla Xen (paper: −82 % time, −84 % traffic, −83 % downtime).
func TestPaperShapeDerby(t *testing.T) {
	prof := mustLookup(t, "derby")
	o := Options{Warmup: 300 * time.Second, Seeds: []int64{1}}
	o.fillDefaults()
	xen, err := RunMigration(o.runOpts(prof, migration.ModeVanilla, 1))
	if err != nil {
		t.Fatal(err)
	}
	jav, err := RunMigration(o.runOpts(prof, migration.ModeAppAssisted, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*Run{xen, jav} {
		if r.VerifyErr != nil {
			t.Fatal(r.VerifyErr)
		}
	}
	if jav.Report.TotalTime.Seconds() > 0.4*xen.Report.TotalTime.Seconds() {
		t.Errorf("JAVMM time %v not ≪ Xen %v", jav.Report.TotalTime, xen.Report.TotalTime)
	}
	if float64(jav.Report.TotalBytes()) > 0.4*float64(xen.Report.TotalBytes()) {
		t.Errorf("JAVMM traffic %d not ≪ Xen %d", jav.Report.TotalBytes(), xen.Report.TotalBytes())
	}
	if jav.WorkloadDowntime.Seconds() > 0.5*xen.WorkloadDowntime.Seconds() {
		t.Errorf("JAVMM downtime %v not ≪ Xen %v", jav.WorkloadDowntime, xen.WorkloadDowntime)
	}
	// Table 2: the derby young generation saturates at 1 GiB.
	if xen.YoungCommittedAtMigration != 1<<30 {
		t.Errorf("derby young at migration = %d", xen.YoungCommittedAtMigration)
	}
	// §5.3: framework memory overhead ≤ ~1 MB.
	if total := jav.LKMBitmapBytes + jav.LKMCacheBytes; total > 2<<20 {
		t.Errorf("LKM memory overhead = %d bytes", total)
	}
	// JAVMM must also use less daemon CPU (X1).
	if jav.Report.CPUTime >= xen.Report.CPUTime {
		t.Errorf("JAVMM CPU %v not below Xen %v", jav.Report.CPUTime, xen.Report.CPUTime)
	}
	// Xen's throughput timeline must show a visible dip; JAVMM's only the
	// short pause (paper Figure 11).
	if len(jav.Samples) == 0 || len(xen.Samples) == 0 {
		t.Fatal("missing throughput samples")
	}
}

// TestPaperShapeScimark asserts the unfavourable case: comparable time,
// slightly less traffic, but LONGER workload downtime under JAVMM
// (paper §5.3).
func TestPaperShapeScimark(t *testing.T) {
	prof := mustLookup(t, "scimark")
	o := Options{Warmup: 300 * time.Second, Seeds: []int64{1}}
	o.fillDefaults()
	xen, err := RunMigration(o.runOpts(prof, migration.ModeVanilla, 1))
	if err != nil {
		t.Fatal(err)
	}
	jav, err := RunMigration(o.runOpts(prof, migration.ModeAppAssisted, 1))
	if err != nil {
		t.Fatal(err)
	}
	if xen.VerifyErr != nil || jav.VerifyErr != nil {
		t.Fatalf("verification: xen=%v javmm=%v", xen.VerifyErr, jav.VerifyErr)
	}
	if jav.WorkloadDowntime <= xen.WorkloadDowntime {
		t.Errorf("scimark JAVMM downtime %v should exceed Xen %v", jav.WorkloadDowntime, xen.WorkloadDowntime)
	}
	if jav.Report.TotalBytes() >= xen.Report.TotalBytes() {
		t.Errorf("scimark JAVMM traffic %d should be slightly below Xen %d",
			jav.Report.TotalBytes(), xen.Report.TotalBytes())
	}
	ratio := jav.Report.TotalTime.Seconds() / xen.Report.TotalTime.Seconds()
	if ratio < 0.6 || ratio > 1.4 {
		t.Errorf("scimark times should be comparable; ratio = %.2f", ratio)
	}
	// Category 3: small young, large old.
	if xen.YoungCommittedAtMigration > 256<<20 {
		t.Errorf("scimark young = %d", xen.YoungCommittedAtMigration)
	}
	if xen.OldUsedAtMigration < 300<<20 {
		t.Errorf("scimark old = %d", xen.OldUsedAtMigration)
	}
}

// TestEveryWorkloadMigratesCorrectly migrates all nine catalog workloads
// under both migrators and checks the correctness invariant for each — the
// suite-wide safety net.
func TestEveryWorkloadMigratesCorrectly(t *testing.T) {
	if testing.Short() {
		t.Skip("18 full migrations are slow in -short mode")
	}
	o := fastOpts()
	o.fillDefaults()
	for _, prof := range workload.Catalog() {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			for _, mode := range []migration.Mode{migration.ModeVanilla, migration.ModeAppAssisted} {
				r, err := RunMigration(o.runOpts(prof, mode, 1))
				if err != nil {
					t.Fatalf("%s: %v", mode, err)
				}
				if r.VerifyErr != nil {
					t.Fatalf("%s: %v", mode, r.VerifyErr)
				}
				if r.Report.TotalTime <= 0 || r.Report.TotalBytes() == 0 {
					t.Fatalf("%s: degenerate report", mode)
				}
			}
		})
	}
}

func TestProfileHeapDerby(t *testing.T) {
	hp, err := ProfileHeap(mustLookup(t, "derby"), 120*time.Second, 2<<30, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 5(b): over 97 % of young memory is garbage at each minor GC.
	if hp.GarbageFraction < 0.9 {
		t.Errorf("derby garbage fraction = %v", hp.GarbageFraction)
	}
	if hp.AvgYoungCommitted < 512<<20 {
		t.Errorf("derby avg young = %d", hp.AvgYoungCommitted)
	}
	if hp.MinorGCs == 0 || hp.AvgMinorGCDuration == 0 {
		t.Error("no GC data collected")
	}
	if hp.GCIntervalSeconds <= 0 {
		t.Error("GC interval not computed")
	}
}

// TestFigure5Observations asserts the §4.2 observations the whole system
// rests on, per workload category.
func TestFigure5Observations(t *testing.T) {
	if testing.Short() {
		t.Skip("nine profiling runs are slow in -short mode")
	}
	gigabit := 117e6 // bytes/sec
	for _, prof := range workload.Catalog() {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			hp, err := ProfileHeap(prof, 120*time.Second, 2<<30, 2)
			if err != nil {
				t.Fatal(err)
			}
			switch prof.Category {
			case workload.Category1:
				// Observation 1: young grows to the max and is large.
				if hp.AvgYoungCommitted < uint64(float64(prof.MaxYoungBytes)*0.8) {
					t.Errorf("young avg %d MiB, want near max %d MiB",
						hp.AvgYoungCommitted>>20, prof.MaxYoungBytes>>20)
				}
				fallthrough
			case workload.Category2:
				// Observation 2: ≥95 % of collected young memory is garbage.
				if hp.GarbageFraction < 0.9 {
					t.Errorf("garbage fraction %.2f, want >0.9", hp.GarbageFraction)
				}
				// Observation 3: collecting the garbage beats transferring
				// it over gigabit.
				transfer := float64(hp.AvgGarbagePerGC) / gigabit
				if hp.AvgMinorGCDuration.Seconds() >= transfer {
					t.Errorf("GC %.2fs not faster than transfer %.2fs",
						hp.AvgMinorGCDuration.Seconds(), transfer)
				}
			case workload.Category3:
				// scimark: more old than young, low garbage fraction.
				if hp.AvgOldUsed <= hp.AvgYoungCommitted {
					t.Errorf("old %d MiB not above young %d MiB",
						hp.AvgOldUsed>>20, hp.AvgYoungCommitted>>20)
				}
				if hp.GarbageFraction > 0.85 {
					t.Errorf("scimark garbage fraction %.2f unexpectedly high", hp.GarbageFraction)
				}
			}
		})
	}
}

func TestFigure1RunsAndRenders(t *testing.T) {
	tab, err := Figure1(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	s := tab.Render()
	if !strings.Contains(s, "Figure 1") || !strings.Contains(s, "dirtying rate") {
		t.Fatalf("render:\n%s", s)
	}
	if len(tab.Rows) < 3 {
		t.Fatalf("only %d iterations", len(tab.Rows))
	}
	// The stop-and-copy row is marked.
	last := tab.Rows[len(tab.Rows)-1][0]
	if !strings.HasSuffix(last, "*") {
		t.Fatalf("last row %q not marked", last)
	}
}

func TestFigure5AllWorkloads(t *testing.T) {
	o := fastOpts()
	tab, err := Figure5(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(tab.Rows))
	}
	s := tab.Render()
	for _, name := range workload.Names() {
		if !strings.Contains(s, name) {
			t.Errorf("missing %s in Figure 5", name)
		}
	}
}

func TestFigure8and9(t *testing.T) {
	fig8, fig9, err := Figure8and9(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"xen", "javmm"} {
		if !strings.Contains(fig8.Render(), mode) || !strings.Contains(fig9.Render(), mode) {
			t.Fatalf("mode %s missing", mode)
		}
	}
	// Figure 9's JAVMM rows must show young-gen skipping.
	var youngSkipped bool
	for _, row := range fig9.Rows {
		if row[0] == "javmm" && row[4] != "0 B" {
			youngSkipped = true
		}
	}
	if !youngSkipped {
		t.Fatal("JAVMM skipped no young-gen pages in Figure 9")
	}
}

func TestComparisonPipeline(t *testing.T) {
	prof := mustLookup(t, "crypto")
	cs, err := CompareWorkloads([]workload.Profile{prof}, fastOpts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 1 || len(cs[0].Xen) != 1 || len(cs[0].Javmm) != 1 {
		t.Fatalf("comparisons = %+v", cs)
	}
	timeT, trafficT, downT, attribT, cpuT := Figure10(cs)
	for _, tab := range []*Table{timeT, trafficT, downT, cpuT} {
		if len(tab.Rows) != 1 {
			t.Fatalf("table %q rows = %d", tab.Title, len(tab.Rows))
		}
	}
	if len(attribT.Rows) != 2 { // one xen + one javmm row per workload
		t.Fatalf("attribution rows = %d", len(attribT.Rows))
	}
	// The javmm row's components must sum to its total (within rounding).
	jr := attribT.Rows[1]
	var sum float64
	for _, cell := range jr[2:6] {
		v, err := strconv.ParseFloat(cell, 64)
		if err != nil {
			t.Fatalf("attribution cell %q: %v", cell, err)
		}
		sum += v
	}
	total, _ := strconv.ParseFloat(jr[6], 64)
	if diff := sum - total; diff > 0.005 || diff < -0.005 {
		t.Fatalf("attribution components %v sum %.3f != total %.3f", jr, sum, total)
	}
	t2 := Table2(cs)
	if len(t2.Rows) != 1 {
		t.Fatal("Table 2 empty")
	}
	figs := Figure11(cs, 40)
	if len(figs) != 1 || len(figs[0].Rows) == 0 {
		t.Fatal("Figure 11 empty")
	}
	// Crypto favours JAVMM: check the reduction column is positive.
	red := timeT.Rows[0][3]
	if !strings.HasPrefix(red, "+") {
		t.Fatalf("crypto time reduction = %q", red)
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:  "T",
		Header: []string{"a", "bb"},
		Notes:  []string{"n1"},
	}
	tab.AddRow("xxx", "y")
	s := tab.Render()
	for _, want := range []string{"T\n", "a", "bb", "xxx", "note: n1", "---"} {
		if !strings.Contains(s, want) {
			t.Fatalf("render missing %q:\n%s", want, s)
		}
	}
}

func TestTableCSVAndSlug(t *testing.T) {
	tab := &Table{
		Title:  "Figure 10(a). Total migration time",
		Header: []string{"workload", "xen"},
		Notes:  []string{"ignored in CSV"},
	}
	tab.AddRow("derby", "62.7 s")
	tab.AddRow("with,comma", "x")
	csv := tab.CSV()
	want := "workload,xen\nderby,62.7 s\n\"with,comma\",x\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
	if got := tab.Slug(); got != "figure-10-a-total-migration-time" {
		t.Fatalf("Slug = %q", got)
	}
	if got := (&Table{Title: "X12. OS-assisted"}).Slug(); got != "x12-os-assisted" {
		t.Fatalf("Slug = %q", got)
	}
	a := &Table{Title: "Figure 11. Throughput of derby around migration (begins at 300 s)"}
	b := &Table{Title: "Figure 11. Throughput of crypto around migration (begins at 300 s)"}
	if a.Slug() == b.Slug() {
		t.Fatalf("per-workload slugs collide: %q", a.Slug())
	}
}

func TestFormatters(t *testing.T) {
	cases := map[string]string{
		fmtBytes(500):                   "500 B",
		fmtBytes(1500):                  "1.5 KB",
		fmtBytes(2500000):               "2.5 MB",
		fmtBytes(7320000000):            "7.32 GB",
		fmtMiB(1 << 30):                 "1024 MiB",
		fmtDur(1500 * time.Millisecond): "1.50 s",
		fmtDur(2500 * time.Microsecond): "2.5 ms",
		fmtDur(300 * time.Microsecond):  "300 µs",
		fmtReduction(10, 2):             "+80%",
		fmtReduction(0, 2):              "n/a",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("format: got %q want %q", got, want)
		}
	}
}

func TestChooseMode(t *testing.T) {
	gb := uint64(117000000)
	favourable := &HeapProfile{
		GarbageFraction:    0.97,
		AvgYoungCommitted:  1 << 30,
		AvgGarbagePerGC:    800 << 20,
		AvgMinorGCDuration: 900 * time.Millisecond,
	}
	if ChooseMode(favourable, gb) != migration.ModeAppAssisted {
		t.Error("favourable profile not assisted")
	}
	survivors := &HeapProfile{GarbageFraction: 0.3, AvgYoungCommitted: 1 << 30}
	if ChooseMode(survivors, gb) != migration.ModeVanilla {
		t.Error("high-survival profile not vanilla")
	}
	tiny := &HeapProfile{GarbageFraction: 0.97, AvgYoungCommitted: 64 << 20}
	if ChooseMode(tiny, gb) != migration.ModeVanilla {
		t.Error("tiny-young profile not vanilla")
	}
	slowGC := &HeapProfile{
		GarbageFraction:    0.97,
		AvgYoungCommitted:  1 << 30,
		AvgGarbagePerGC:    100 << 20,
		AvgMinorGCDuration: 5 * time.Second,
	}
	if ChooseMode(slowGC, gb) != migration.ModeVanilla {
		t.Error("slow-GC profile not vanilla")
	}
}

func TestAblationFinalUpdateShapes(t *testing.T) {
	tab, err := AblationFinalUpdate(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// The re-walk strategy's final update must be slower than the delta
	// strategy's (that is why the paper deferred it).
	delta := tab.Rows[0][1]
	rewalk := tab.Rows[1][1]
	if delta == rewalk {
		t.Logf("final updates equal (%s); acceptable but unexpected", delta)
	}
}

func TestAblationCacheShapes(t *testing.T) {
	o := fastOpts()
	o.MemBytes = 2 << 30
	tab, err := AblationCache(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	s := tab.Render()
	if !strings.Contains(s, "xen") || !strings.Contains(s, "javmm") {
		t.Fatalf("render:\n%s", s)
	}
}

func TestAblationCompressionShapes(t *testing.T) {
	tab, err := AblationCompression(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[4][0] != "javmm+hints" {
		t.Fatalf("row 5 = %q", tab.Rows[4][0])
	}
}

func TestAblationPolicyShapes(t *testing.T) {
	tab, err := AblationPolicy(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// The policy must pick vanilla for scimark and javmm for derby.
	for _, row := range tab.Rows {
		switch row[0] {
		case "derby":
			if row[3] != "javmm" {
				t.Errorf("policy for derby = %q", row[3])
			}
		case "scimark":
			if row[3] != "xen" {
				t.Errorf("policy for scimark = %q", row[3])
			}
		}
	}
}

func TestAblationALBShapes(t *testing.T) {
	tab, err := AblationALB(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// ALB must show a ballooned young generation at migration.
	if !strings.Contains(tab.Rows[1][4], "128") {
		t.Fatalf("ALB young at migration = %q", tab.Rows[1][4])
	}
}

func TestAblationScaleShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("8 GiB VM run is slow in -short mode")
	}
	tab, err := AblationScale(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Reductions stay positive at scale.
	for _, row := range tab.Rows {
		if !strings.HasPrefix(row[3], "+") || !strings.HasPrefix(row[6], "+") {
			t.Fatalf("scale row lost the JAVMM advantage: %v", row)
		}
	}
}

func TestAblationPostCopyShapes(t *testing.T) {
	tab, err := AblationPostCopy(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[2][0] != "post-copy" || tab.Rows[3][0] != "hybrid" {
		t.Fatalf("row order: %v", tab.Rows)
	}
	// Post-copy must record degradation; pre-copy none.
	if tab.Rows[0][4] != "0 µs" {
		t.Fatalf("xen degradation = %q", tab.Rows[0][4])
	}
	if tab.Rows[2][4] == "0 µs" {
		t.Fatal("post-copy recorded no degradation")
	}
	// The hybrid warm phase must shrink the degradation tail relative to
	// pure post-copy — both notes carry the raw fault counts.
	if len(tab.Notes) < 2 {
		t.Fatalf("notes = %v", tab.Notes)
	}
}

func TestAblationReplicationShapes(t *testing.T) {
	tab, err := AblationReplication(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[1][3] == "0" {
		t.Fatal("deprotection omitted no pages")
	}
}

func TestAblationCongestionShapes(t *testing.T) {
	tab, err := AblationCongestion(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Xen slows under congestion; JAVMM is barely affected.
	if tab.Rows[0][3] == "1.0x" {
		t.Fatalf("xen unaffected by congestion: %v", tab.Rows[0])
	}
}

func TestAblationG1Shapes(t *testing.T) {
	tab, err := AblationG1(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// The re-reporting configuration must beat the non-re-reporting one on
	// traffic (the §6 finding this ablation exists for).
	noRe, withRe := tab.Rows[1], tab.Rows[2]
	if noRe[4] != "0" {
		t.Fatalf("no-re-report row reports = %q", noRe[4])
	}
	if withRe[4] == "0" {
		t.Fatal("re-report row sent no reports")
	}
}

func TestAblationFreePagesShapes(t *testing.T) {
	tab, err := AblationFreePages(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// The light VM must benefit substantially; skipped volume non-zero.
	if tab.Rows[3][4] == "0 B" {
		t.Fatal("light VM skipped no free pages")
	}
}

func TestAblationDeltaShapes(t *testing.T) {
	tab, err := AblationDelta(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[1][5] == "0" {
		t.Fatal("xen+delta recorded no resends")
	}
}

func TestTable1Static(t *testing.T) {
	tab := Table1()
	if len(tab.Rows) != 9 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestFigure12Sweep(t *testing.T) {
	// One category-1 workload at a reduced young cap suffices to validate
	// the sweep wiring; the full sweep runs in the benchmark harness.
	prof := mustLookup(t, "compiler")
	cs, err := CompareWorkloads([]workload.Profile{prof}, fastOpts(), Table3Overrides())
	if err != nil {
		t.Fatal(err)
	}
	timeT, trafficT, downT := Figure12(cs)
	for _, tab := range []*Table{timeT, trafficT, downT} {
		if len(tab.Rows) != 1 {
			t.Fatalf("table %q rows = %d", tab.Title, len(tab.Rows))
		}
	}
	t3 := Table3(cs, Table3Overrides())
	if len(t3.Rows) != 1 {
		t.Fatal("Table 3 empty")
	}
	// Compiler capped at 512 MiB: observed young must equal the cap.
	if !strings.Contains(t3.Rows[0][2], "512") {
		t.Fatalf("compiler observed young = %q", t3.Rows[0][2])
	}
}

func TestAblationResilienceShapes(t *testing.T) {
	o := fastOpts()
	o.Warmup = 60 * time.Second
	tab, err := AblationResilience(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 12 {
		t.Fatalf("resilience table has %d rows, want 12", len(tab.Rows))
	}
	byName := map[string][]string{}
	for _, r := range tab.Rows {
		byName[r[0]] = r
	}
	if out := byName["xen / partition outlives retries"][1]; out != "aborted (source resumed)" {
		t.Errorf("long partition outcome = %q, want aborted", out)
	}
	if out := byName["javmm / handshake lost"][1]; out != "degraded -> xen" {
		t.Errorf("lost handshake outcome = %q, want degraded -> xen", out)
	}
	if out := byName["xen / partition x1 (500ms)"]; out[1] != "completed" || out[5] == "0" {
		t.Errorf("healed partition row = %v, want completed with retries > 0", out)
	}
	if out := byName["xen / clean"]; out[1] != "completed" || out[5] != "0" || out[7] != "0" {
		t.Errorf("clean row = %v, want completed with no retries or faults", out)
	}
	if out := byName["xen / corrupt stream x3 (repaired)"]; out[1] != "completed (3 corruptions repaired)" || out[7] != "3" {
		t.Errorf("corrupt row = %v, want 3 repaired corruptions", out)
	}
	if out := byName["javmm / abort + resume"]; !strings.HasPrefix(out[1], "aborted -> resumed") {
		t.Errorf("abort+resume row = %v, want aborted -> resumed outcome", out)
	}
	if tab.Render() == "" {
		t.Fatal("empty render")
	}
}

func TestRunMigrationFaultAbortRequiresOptIn(t *testing.T) {
	prof := mustLookup(t, "derby")
	opts := RunOpts{
		Profile: prof,
		Mode:    migration.ModeVanilla,
		Seed:    1,
		Warmup:  30 * time.Second,
		FaultPlan: faults.Plan{
			{Site: faults.SiteDestCrash, At: 2 * time.Second},
		},
	}
	if _, err := RunMigration(opts); err == nil {
		t.Fatal("aborted run without AllowAbort did not error")
	}
	opts.AllowAbort = true
	run, err := RunMigration(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !run.Aborted || run.AbortReason == "" {
		t.Fatalf("run = aborted=%v reason=%q, want aborted with a reason", run.Aborted, run.AbortReason)
	}
	if len(run.FaultEvents) == 0 {
		t.Fatal("no fault events recorded")
	}
	// The aborted run's partial accounting still reconciles.
	if run.Attribution == nil {
		t.Fatal("aborted run has no attribution")
	}
}

func TestAblationContentionShapes(t *testing.T) {
	// A short warmup keeps the 1+2+4-VM fleet sweep affordable under -race;
	// the shape assertions only need the ordering, not paper-scale numbers.
	tab, err := AblationContention(Options{Warmup: 15 * time.Second, Seeds: []int64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 (2 modes x 3 fleet sizes)", len(tab.Rows))
	}
	// Splitting a fixed link N ways must stretch the fleet makespan
	// monotonically within each mode (column 3).
	for _, mode := range []int{0, 3} {
		for i := mode; i < mode+2; i++ {
			a, b := tab.Rows[i][3], tab.Rows[i+1][3]
			da, errA := parseTableDur(a)
			db, errB := parseTableDur(b)
			if errA != nil || errB != nil {
				t.Fatalf("unparseable makespans %q / %q", a, b)
			}
			if db <= da {
				t.Fatalf("makespan did not grow with fleet size: %v -> %v (%v)", a, b, tab.Rows[i+1][0])
			}
		}
	}
}

// parseTableDur reverses fmtDur's rendering far enough for ordering checks.
func parseTableDur(s string) (float64, error) {
	var v float64
	var unit string
	if _, err := fmt.Sscanf(s, "%f %s", &v, &unit); err != nil {
		return 0, err
	}
	switch unit {
	case "ms":
		return v / 1000, nil
	case "s":
		return v, nil
	case "min":
		return v * 60, nil
	}
	return 0, fmt.Errorf("unknown unit %q", unit)
}

// X16's acceptance criteria: at 4 VMs in JAVMM mode, cycle-aware ordering
// beats naive-parallel on both aggregate SLA cost and worst-VM workload
// downtime, and the whole plan replays byte-identically at the same seed.
// (Vanilla rows are the contrast, not the claim: full pre-copy outlasts any
// quiet window, so launch timing cannot help it — see the X16 notes.)
func TestAblationOrchestrationWins(t *testing.T) {
	o := Options{Warmup: 15 * time.Second, Seeds: []int64{1}}
	type outcome struct {
		cost  float64
		worst time.Duration
	}
	measure := func(res *fleet.PlanResult) outcome {
		t.Helper()
		var out outcome
		for i := range res.Moves {
			m := &res.Moves[i]
			if m.Err != nil {
				t.Fatalf("move %s: %v", m.Name, m.Err)
			}
			if m.VerifyErr != nil {
				t.Fatalf("move %s verification: %v", m.Name, m.VerifyErr)
			}
			if m.WorkloadDowntime > out.worst {
				out.worst = m.WorkloadDowntime
			}
		}
		if res.SLA == nil {
			t.Fatal("no SLA aggregate")
		}
		out.cost = res.SLA.Total
		return out
	}
	for _, mode := range []migration.Mode{migration.ModeAppAssisted} {
		t.Run(mode.String(), func(t *testing.T) {
			naive, err := orchestrationPlan(o, mode, fleet.OrderNaive)
			if err != nil {
				t.Fatal(err)
			}
			cycle, err := orchestrationPlan(o, mode, fleet.OrderCycleAware)
			if err != nil {
				t.Fatal(err)
			}
			n, c := measure(naive), measure(cycle)
			if c.cost >= n.cost {
				t.Fatalf("cycle-aware fleet cost %.3f did not beat naive %.3f", c.cost, n.cost)
			}
			if c.worst >= n.worst {
				t.Fatalf("cycle-aware worst downtime %v did not beat naive %v", c.worst, n.worst)
			}

			// Byte-identical replay of the cycle-aware plan.
			again, err := orchestrationPlan(o, mode, fleet.OrderCycleAware)
			if err != nil {
				t.Fatal(err)
			}
			if len(again.Moves) != len(cycle.Moves) {
				t.Fatalf("replay move count %d != %d", len(again.Moves), len(cycle.Moves))
			}
			for i := range cycle.Moves {
				x, y := &cycle.Moves[i], &again.Moves[i]
				if !reflect.DeepEqual(x.Report, y.Report) {
					t.Fatalf("move %s report diverges on replay", x.Name)
				}
				if x.LaunchedAt != y.LaunchedAt || x.Deferrals != y.Deferrals ||
					x.QuietLaunch != y.QuietLaunch || x.Forced != y.Forced {
					t.Fatalf("move %s scheduling record diverges on replay", x.Name)
				}
			}
			if !reflect.DeepEqual(cycle.SLA, again.SLA) {
				t.Fatal("fleet cost diverges on replay")
			}
			if !reflect.DeepEqual(cycle.Fabric, again.Fabric) {
				t.Fatal("fabric accounting diverges on replay")
			}
		})
	}
}

func TestAblationOrchestrationShapes(t *testing.T) {
	tab, err := AblationOrchestration(Options{Warmup: 15 * time.Second, Seeds: []int64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 (2 modes x 3 orderings)", len(tab.Rows))
	}
	// The acceptance ordering holds in the javmm rows (3..5); the vanilla
	// rows only need to be well-formed — they are the contrast case.
	const base = 3
	naiveCost, err1 := strconv.ParseFloat(tab.Rows[base][8], 64)
	cycleCost, err2 := strconv.ParseFloat(tab.Rows[base+2][8], 64)
	if err1 != nil || err2 != nil {
		t.Fatalf("unparseable sla costs %q / %q", tab.Rows[base][8], tab.Rows[base+2][8])
	}
	if cycleCost >= naiveCost {
		t.Fatalf("%s: cycle-aware cost %.3f did not beat naive %.3f",
			tab.Rows[base][0], cycleCost, naiveCost)
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Header) {
			t.Fatalf("row %v has %d cells, header %d", row, len(row), len(tab.Header))
		}
	}
}

func TestAblationHealingShapes(t *testing.T) {
	tab, err := AblationHealing(Options{Warmup: 15 * time.Second, Seeds: []int64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 (2 modes x 3 policies)", len(tab.Rows))
	}
	for i := 0; i < 6; i += 3 {
		if got := tab.Rows[i][2]; got != "1/2" {
			t.Fatalf("no-retry completed = %s, want 1/2 (the d1 move is stranded)", got)
		}
		if got := tab.Rows[i+1][2]; got != "1/2" {
			t.Fatalf("retry-same completed = %s, want 1/2 (every retry re-dials the dead host)", got)
		}
		if got := tab.Rows[i+2][2]; got != "2/2" {
			t.Fatalf("relocate completed = %s, want 2/2", got)
		}
		if got := tab.Rows[i+2][5]; got != "1" {
			t.Fatalf("relocate relocations = %s, want 1", got)
		}
	}
}

// The X17 acceptance criterion: full healing (destination re-selection)
// beats no healing on the priced SLA metric, in both modes — the stranded-VM
// penalty the relocation avoids dominates the extra copy it pays for.
func TestAblationHealingWins(t *testing.T) {
	o := Options{Warmup: 15 * time.Second, Seeds: []int64{1}}
	price := func(arm string, mode migration.Mode) float64 {
		t.Helper()
		res, err := healingPlan(o, mode, arm)
		if err != nil {
			t.Fatal(err)
		}
		stranded := 0
		for i := range res.Moves {
			if res.Moves[i].Err != nil {
				stranded++
			}
		}
		if arm == "relocate" && stranded != 0 {
			t.Fatalf("relocate stranded %d moves", stranded)
		}
		cost, err := healingCost(res, stranded)
		if err != nil {
			t.Fatal(err)
		}
		return cost
	}
	for _, mode := range []migration.Mode{migration.ModeVanilla, migration.ModeAppAssisted} {
		noRetry, relocate := price("no-retry", mode), price("relocate", mode)
		if relocate >= noRetry {
			t.Fatalf("%s: relocate cost %.3f did not beat no-retry %.3f", mode, relocate, noRetry)
		}
	}
}
