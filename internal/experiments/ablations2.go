package experiments

import (
	"fmt"
	"time"

	"javmm/internal/migration"
	"javmm/internal/netsim"
	"javmm/internal/replication"
	"javmm/internal/workload"
)

// AblationReplication renders X9: RemusDB-style continuous checkpointing of
// a derby VM, with and without memory deprotection through the framework's
// transfer bitmap (paper §2: "the work described in this paper is closest to
// the memory deprotection technique discussed in RemusDB ... data structures
// to be suitably omitted by this technique are yet to be identified" — the
// young generation is that data structure).
func AblationReplication(o Options) (*Table, error) {
	o.fillDefaults()
	prof, err := workload.Lookup("derby")
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "X9. RemusDB-style checkpoint replication of the derby VM (10 s window, 100 ms epochs)",
		Header: []string{"config", "stream", "pages", "deprotected", "avg epoch pause"},
	}
	for _, deprotect := range []bool{false, true} {
		vm, err := workload.Boot(workload.BootConfig{
			MemBytes: o.MemBytes,
			Profile:  prof,
			Assisted: true,
			Seed:     o.Seeds[0],
		})
		if err != nil {
			return nil, err
		}
		vm.Driver.Run(o.Warmup)
		if vm.Driver.Err != nil {
			return nil, vm.Driver.Err
		}
		r := &replication.Replicator{
			Dom:    vm.Dom,
			LKM:    vm.Guest.LKM,
			Link:   netsim.NewLink(vm.Clock, netsim.GigabitEffective, 0),
			Clock:  vm.Clock,
			Exec:   vm.Driver,
			Backup: migration.NewDestination(vm.Dom.NumPages()),
			Cfg:    replication.Config{Deprotect: deprotect},
		}
		rep, err := r.Protect(10 * time.Second)
		if err != nil {
			return nil, fmt.Errorf("experiments: replication ablation (deprotect=%v): %w", deprotect, err)
		}
		name := "remus"
		if deprotect {
			name = "remus+deprotect"
		}
		t.AddRow(name,
			fmtBytes(rep.TotalBytes),
			fmt.Sprintf("%d", rep.TotalPages),
			fmt.Sprintf("%d", rep.Deprotected),
			fmtDur(rep.AvgPause()))
	}
	t.Notes = append(t.Notes,
		"deprotection reuses JAVMM's skip-over areas: young-generation garbage is not replicated, shrinking the checkpoint stream and epoch pauses (§2)")
	return t, nil
}

// AblationDelta renders X13: the delta-compression baseline of Svärd et al.
// (paper §2). XBZRLE-style delta encoding attacks the same resend problem
// JAVMM removes — but by caching a copy of every sent page at the daemon and
// paying CPU per resend, where JAVMM simply never sends the garbage.
func AblationDelta(o Options) (*Table, error) {
	o.fillDefaults()
	prof, err := workload.Lookup("derby")
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "X13. Delta compression (XBZRLE-style, §2) vs JAVMM (derby)",
		Header: []string{"config", "time", "traffic", "downtime", "daemon CPU", "delta resends", "daemon cache"},
	}
	configs := []struct {
		name  string
		mode  migration.Mode
		delta bool
	}{
		{"xen", migration.ModeVanilla, false},
		{"xen+delta", migration.ModeVanilla, true},
		{"javmm", migration.ModeAppAssisted, false},
	}
	for _, c := range configs {
		opts := o.runOpts(prof, c.mode, o.Seeds[0])
		if c.delta {
			opts.EngineConfig = &migration.Config{DeltaCompression: true}
		}
		r, err := RunMigration(opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: delta ablation %s: %w", c.name, err)
		}
		if r.VerifyErr != nil {
			return nil, fmt.Errorf("experiments: delta ablation %s verification: %w", c.name, r.VerifyErr)
		}
		t.AddRow(c.name,
			fmtDur(r.Report.TotalTime),
			fmtBytes(r.Report.TotalBytes()),
			fmtDur(r.WorkloadDowntime),
			fmtDur(r.Report.CPUTime),
			fmt.Sprintf("%d", r.Report.DeltaResends),
			fmtBytes(r.Report.DeltaCacheBytes))
	}
	t.Notes = append(t.Notes,
		"delta encoding shrinks resends to ~15% of a page but caches a full copy of the VM at the daemon and computes on every resend; JAVMM skips the garbage outright (§2/§3)")
	return t, nil
}

// AblationG1 renders X11: JAVMM on the garbage-first-style regional
// collector — the paper's §6 future work ("porting JAVMM to run with
// collectors that use non-contiguous VA ranges for the Young generation").
// Four configurations on derby: vanilla Xen; JAVMM with the agent's per-GC
// skip-area re-reporting OFF (the paper's deferred-expansion design, which
// erodes as regions churn); JAVMM with re-reporting ON; and, for reference,
// JAVMM on the contiguous parallel collector.
func AblationG1(o Options) (*Table, error) {
	o.fillDefaults()
	prof, err := workload.Lookup("derby")
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "X11. JAVMM with a region-based (G1-style) collector (derby)",
		Header: []string{"config", "time", "traffic", "downtime", "re-reports"},
	}
	off, on := false, true
	configs := []struct {
		name      string
		mode      migration.Mode
		collector string
		rereport  *bool
	}{
		{"g1 / xen", migration.ModeVanilla, workload.CollectorG1, nil},
		{"g1 / javmm, no re-report", migration.ModeAppAssisted, workload.CollectorG1, &off},
		{"g1 / javmm, re-report", migration.ModeAppAssisted, workload.CollectorG1, &on},
		{"parallel / javmm", migration.ModeAppAssisted, workload.CollectorParallel, nil},
	}
	for _, c := range configs {
		opts := o.runOpts(prof, c.mode, o.Seeds[0])
		opts.Collector = c.collector
		opts.AgentReReport = c.rereport
		r, err := RunMigration(opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: G1 ablation %q: %w", c.name, err)
		}
		if r.VerifyErr != nil {
			return nil, fmt.Errorf("experiments: G1 ablation %q verification: %w", c.name, r.VerifyErr)
		}
		t.AddRow(c.name,
			fmtDur(r.Report.TotalTime),
			fmtBytes(r.Report.TotalBytes()),
			fmtDur(r.WorkloadDowntime),
			fmt.Sprintf("%d", r.AgentReReports+r.AgentGrowReports))
	}
	t.Notes = append(t.Notes,
		"each G1 minor GC relocates the young generation; without re-reporting, the §3.3.4 deferred-expansion rule leaves the churning regions unprotected and JAVMM degenerates to plain pre-copy (downtime aside)",
		"re-reporting = the agent reports each fresh young region as the heap takes it, plus the full young set at every GC end")
	return t, nil
}

// AblationFreePages renders X12: the OS-assisted baseline the paper's
// introduction weighs and sets aside ("skipping free pages may only benefit
// the migration of lightly-loaded VMs"): the migration daemon consults the
// guest kernel's free list and skips unallocated frames. Compared on a busy
// derby VM and a lightly-loaded one.
func AblationFreePages(o Options) (*Table, error) {
	o.fillDefaults()
	derby, err := workload.Lookup("derby")
	if err != nil {
		return nil, err
	}
	// The lightly-loaded VM: mpeg's modest heap, barely warmed up.
	light, err := workload.Lookup("mpeg")
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:  "X12. OS-assisted free-page skipping (Koto et al., §1) vs load",
		Header: []string{"VM", "config", "time", "traffic", "free pages skipped"},
	}
	cases := []struct {
		label  string
		prof   workload.Profile
		warmup time.Duration
		skip   bool
	}{
		{"busy (derby)", derby, o.Warmup, false},
		{"busy (derby)", derby, o.Warmup, true},
		{"light (mpeg)", light, 20 * time.Second, false},
		{"light (mpeg)", light, 20 * time.Second, true},
	}
	for _, c := range cases {
		opts := o.runOpts(c.prof, migration.ModeVanilla, o.Seeds[0])
		opts.Warmup = c.warmup
		opts.SkipFreePages = c.skip
		r, err := RunMigration(opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: free-page ablation %s: %w", c.label, err)
		}
		if r.VerifyErr != nil {
			return nil, fmt.Errorf("experiments: free-page ablation %s verification: %w", c.label, r.VerifyErr)
		}
		cfg := "xen"
		if c.skip {
			cfg = "xen+freeskip"
		}
		var freeSkipped uint64
		for _, it := range r.Report.Iterations {
			freeSkipped += it.PagesSkippedFree
		}
		t.AddRow(c.label, cfg,
			fmtDur(r.Report.TotalTime),
			fmtBytes(r.Report.TotalBytes()),
			fmtBytes(freeSkipped*4096))
	}
	t.Notes = append(t.Notes,
		"free pages only pay off once: the busy VM's traffic is dominated by re-dirtied heap, so the saving is a one-iteration constant; the light VM is mostly free pages")
	return t, nil
}

// AblationCongestion renders X10: migration over a link carrying background
// traffic (the §6 "intelligence" discussion: the framework can take current
// network speed into account). The migration path's effective bandwidth
// drops to 40 % halfway through a long Xen migration; JAVMM's short
// migrations mostly dodge the congestion window entirely.
func AblationCongestion(o Options) (*Table, error) {
	o.fillDefaults()
	prof, err := workload.Lookup("derby")
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "X10. Migration under link congestion (derby; bandwidth drops to 40% after 15 s)",
		Header: []string{"mode", "clean link", "congested link", "slowdown"},
	}
	congest := func(start time.Duration) func(time.Duration) float64 {
		return func(now time.Duration) float64 {
			if now >= start+15*time.Second {
				return 0.4
			}
			return 1.0
		}
	}
	for _, mode := range []migration.Mode{migration.ModeVanilla, migration.ModeAppAssisted} {
		var times [2]time.Duration
		for i, congested := range []bool{false, true} {
			vm, err := workload.Boot(workload.BootConfig{
				MemBytes: o.MemBytes,
				Profile:  prof,
				Assisted: mode == migration.ModeAppAssisted,
				Seed:     o.Seeds[0],
			})
			if err != nil {
				return nil, err
			}
			vm.Driver.Run(o.Warmup)
			if vm.Driver.Err != nil {
				return nil, vm.Driver.Err
			}
			link := netsim.NewLink(vm.Clock, netsim.GigabitEffective, 100*time.Microsecond)
			if congested {
				link.Modulator = congest(vm.Clock.Now())
			}
			src := &migration.Source{
				Dom:   vm.Dom,
				LKM:   vm.Guest.LKM,
				Link:  link,
				Clock: vm.Clock,
				Exec:  vm.Driver,
				Dest:  migration.NewDestination(vm.Dom.NumPages()),
				Cfg:   migration.Config{Mode: mode},
			}
			rep, err := src.Migrate()
			if err != nil {
				return nil, fmt.Errorf("experiments: congestion ablation %s: %w", mode, err)
			}
			times[i] = rep.TotalTime
		}
		t.AddRow(mode.String(),
			fmtDur(times[0]),
			fmtDur(times[1]),
			fmt.Sprintf("%.1fx", times[1].Seconds()/times[0].Seconds()))
	}
	t.Notes = append(t.Notes,
		"long pre-copy migrations are exposed to mid-flight congestion; JAVMM usually finishes before the window opens")
	return t, nil
}
