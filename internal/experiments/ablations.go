package experiments

import (
	"fmt"
	"time"

	"javmm/internal/cacheapp"
	"javmm/internal/guestos"
	"javmm/internal/hypervisor"
	"javmm/internal/mem"
	"javmm/internal/migration"
	"javmm/internal/netsim"
	"javmm/internal/simclock"
	"javmm/internal/workload"
)

// AblationCompression evaluates the §6 compression extension (X2): compress
// only the pages that are not skipped, trading daemon CPU for bandwidth.
// Four configurations on derby: Xen, Xen+zlib-model, JAVMM, JAVMM+zlib-model.
func AblationCompression(o Options) (*Table, error) {
	o.fillDefaults()
	prof, err := workload.Lookup("derby")
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "X2. Compression extension (derby): compress only unskipped pages",
		Header: []string{"config", "time", "traffic", "downtime", "daemon CPU"},
	}
	configs := []struct {
		name     string
		mode     migration.Mode
		compress bool
		hinted   bool
	}{
		{"xen", migration.ModeVanilla, false, false},
		{"xen+compress", migration.ModeVanilla, true, false},
		{"javmm", migration.ModeAppAssisted, false, false},
		{"javmm+compress", migration.ModeAppAssisted, true, false},
		{"javmm+hints", migration.ModeAppAssisted, true, true},
	}
	for _, c := range configs {
		opts := o.runOpts(prof, c.mode, o.Seeds[0])
		opts.Compress = c.compress
		opts.HintedCompress = c.hinted
		r, err := RunMigration(opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: compression ablation %s: %w", c.name, err)
		}
		if r.VerifyErr != nil {
			return nil, fmt.Errorf("experiments: compression ablation %s verification: %w", c.name, r.VerifyErr)
		}
		t.AddRow(c.name,
			fmtDur(r.Report.TotalTime),
			fmtBytes(r.Report.TotalBytes()),
			fmtDur(r.WorkloadDowntime),
			fmtDur(r.Report.CPUTime))
	}
	t.Notes = append(t.Notes,
		"compression halves wire bytes at a CPU cost; combined with JAVMM it compresses only what JAVMM did not already skip (§6)",
		"javmm+hints: the agent labels the old generation strongly compressible and the code cache lightly (per-page hints, §6)")
	return t, nil
}

// ChooseMode is the §6 "intelligent framework" policy (X4): given a heap
// profile and the migration link, decide whether application assistance is
// worthwhile. JAVMM should be avoided when the workload retains most of its
// young generation (the enforced GC buys nothing and its pause adds
// downtime), when the young generation is small, or when collecting garbage
// would be slower than just transferring it.
func ChooseMode(hp *HeapProfile, bandwidth uint64) migration.Mode {
	if hp.GarbageFraction < 0.5 {
		// High object survival: the enforced GC would not reclaim much
		// (the scimark case, §5.3).
		return migration.ModeVanilla
	}
	if hp.AvgYoungCommitted < 256<<20 {
		// Little skippable memory relative to a 2 GiB VM.
		return migration.ModeVanilla
	}
	// Observation 3 (§4.2): assist only if collecting the young garbage is
	// faster than transferring it.
	transfer := time.Duration(float64(hp.AvgGarbagePerGC) / float64(bandwidth) * float64(time.Second))
	if hp.AvgMinorGCDuration > transfer {
		return migration.ModeVanilla
	}
	return migration.ModeAppAssisted
}

// AblationPolicy runs the policy over derby (favourable) and scimark
// (unfavourable) and compares forced-JAVMM against the policy's choice.
func AblationPolicy(o Options) (*Table, error) {
	o.fillDefaults()
	t := &Table{
		Title:  "X4. Mode policy: turn JAVMM off when workload scenarios are unfavourable (§6)",
		Header: []string{"workload", "garbage %", "young avg", "policy picks", "downtime (forced javmm)", "downtime (policy)"},
	}
	bw := o.Bandwidth
	if bw == 0 {
		bw = netsim.GigabitEffective
	}
	for _, name := range []string{"derby", "scimark"} {
		prof, err := workload.Lookup(name)
		if err != nil {
			return nil, err
		}
		hp, err := ProfileHeap(prof, o.ProfileDur/2, o.MemBytes, o.Seeds[0])
		if err != nil {
			return nil, err
		}
		pick := ChooseMode(hp, bw)

		forced, err := RunMigration(o.runOpts(prof, migration.ModeAppAssisted, o.Seeds[0]))
		if err != nil {
			return nil, err
		}
		chosen := forced
		if pick != migration.ModeAppAssisted {
			chosen, err = RunMigration(o.runOpts(prof, pick, o.Seeds[0]))
			if err != nil {
				return nil, err
			}
		}
		t.AddRow(name,
			fmt.Sprintf("%.0f%%", hp.GarbageFraction*100),
			fmtMiB(hp.AvgYoungCommitted),
			pick.String(),
			fmtDur(forced.WorkloadDowntime),
			fmtDur(chosen.WorkloadDowntime))
	}
	return t, nil
}

// AblationFinalUpdate compares the two final-bitmap-update designs of §3.3.4
// (X5): immediate shrink notifications + delta final update (implemented)
// versus no shrink notifications + full page-table re-walk at the end
// (considered and deferred by the paper because the re-walk slows the final
// update while applications are paused).
func AblationFinalUpdate(o Options) (*Table, error) {
	o.fillDefaults()
	prof, err := workload.Lookup("derby")
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "X5. Final bitmap update strategies (derby, JAVMM)",
		Header: []string{"strategy", "final update", "downtime", "traffic", "time"},
	}
	for _, rewalk := range []bool{false, true} {
		name := "delta + shrink notifications"
		if rewalk {
			name = "full re-walk at end"
		}
		opts := o.runOpts(prof, migration.ModeAppAssisted, o.Seeds[0])
		opts.LKMRewalk = rewalk
		r, err := RunMigration(opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: final-update ablation (rewalk=%v): %w", rewalk, err)
		}
		if r.VerifyErr != nil {
			return nil, fmt.Errorf("experiments: final-update ablation (rewalk=%v) verification: %w", rewalk, r.VerifyErr)
		}
		t.AddRow(name,
			fmtDur(r.Report.FinalUpdate),
			fmtDur(r.WorkloadDowntime),
			fmtBytes(r.Report.TotalBytes()),
			fmtDur(r.Report.TotalTime))
	}
	t.Notes = append(t.Notes,
		"the re-walk variant pairs with the engine's conservative stop-and-copy; its final update walks every skip-over page while the application is paused (§3.3.4)")
	return t, nil
}

// opsInWindow sums operations completed in timeline seconds [from, to).
func opsInWindow(samples []workload.Sample, from, to int) float64 {
	var total float64
	for _, s := range samples {
		if s.Second >= from && s.Second < to {
			total += s.Ops
		}
	}
	return total
}

// AblationALB evaluates the §2 baseline the paper contrasts with:
// Application-Level Ballooning (Salomie et al.), which shrinks the Java heap
// before migration so pre-copy has less dirty memory to chase, at the price
// of more frequent GCs while the balloon is inflated. Three configurations
// on derby: plain Xen, Xen+ALB (young ballooned to 128 MiB), and JAVMM.
func AblationALB(o Options) (*Table, error) {
	o.fillDefaults()
	prof, err := workload.Lookup("derby")
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "X6. Application-Level Ballooning baseline vs JAVMM (derby)",
		Header: []string{"config", "time", "traffic", "downtime", "young at migration", "ops during migration+60s"},
	}
	configs := []struct {
		name string
		mode migration.Mode
		alb  uint64
	}{
		{"xen", migration.ModeVanilla, 0},
		{"xen+ALB(128MiB)", migration.ModeVanilla, 128 << 20},
		{"javmm", migration.ModeAppAssisted, 0},
	}
	for _, c := range configs {
		opts := o.runOpts(prof, c.mode, o.Seeds[0])
		opts.ALBShrinkTo = c.alb
		if opts.Cooldown < 70*time.Second {
			opts.Cooldown = 70 * time.Second
		}
		r, err := RunMigration(opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: ALB ablation %s: %w", c.name, err)
		}
		if r.VerifyErr != nil {
			return nil, fmt.Errorf("experiments: ALB ablation %s verification: %w", c.name, r.VerifyErr)
		}
		ops := opsInWindow(r.Samples, r.MigrationStartSecond, r.MigrationStartSecond+60)
		t.AddRow(c.name,
			fmtDur(r.Report.TotalTime),
			fmtBytes(r.Report.TotalBytes()),
			fmtDur(r.WorkloadDowntime),
			fmtMiB(r.YoungCommittedAtMigration),
			fmt.Sprintf("%.1f", ops))
	}
	t.Notes = append(t.Notes,
		"ALB cuts traffic by shrinking the heap but pays continuous GC overhead while ballooned; JAVMM skips the same memory without shrinking it (§2)")
	return t, nil
}

// AblationScale evaluates the §6 claim that JAVMM's benefits persist for
// larger VMs on faster networks, since footprints and dirtying rates scale
// with the platform: a 2 GiB derby VM on gigabit vs a 4 GiB double-rate
// derby on 10 GbE.
func AblationScale(o Options) (*Table, error) {
	o.fillDefaults()
	base, err := workload.Lookup("derby")
	if err != nil {
		return nil, err
	}
	// The scaled platform (§6): 4x memory and young generation, ~7x
	// allocation rate (keeping dirtying ~2.4x the link, derby's ratio on
	// gigabit), and 4x faster cores, which show up as 4x cheaper GC work
	// per byte.
	scaled := base
	scaled.Name = "derby-scaled"
	scaled.AllocBytesPerSec = 2000 << 20
	scaled.MaxYoungBytes = 4 << 30
	scaled.InitialYoungBytes = 256 << 20
	scaled.MaxOldBytes = 2 << 30
	scaled.OldSeedBytes = 512 << 20
	scaled.OldMutatePagesPerSec *= 4
	scaled.MinorGCBase = 30 * time.Millisecond
	scaled.MinorCopyNsPB = 4
	scaled.MinorScanNsPB = 0.15

	t := &Table{
		Title:  "X7. Scaling: larger VM, faster network (§6)",
		Header: []string{"setup", "xen time", "javmm time", "time cut", "xen traffic", "javmm traffic", "traffic cut"},
	}
	setups := []struct {
		label string
		prof  workload.Profile
		mem   uint64
		bw    uint64
	}{
		{"2GiB VM, 1GbE", base, 2 << 30, netsim.GigabitEffective},
		{"8GiB VM, 10GbE", scaled, 8 << 30, netsim.TenGigabitEffective},
	}
	for _, s := range setups {
		var runs [2]*Run
		for i, mode := range []migration.Mode{migration.ModeVanilla, migration.ModeAppAssisted} {
			opts := o.runOpts(s.prof, mode, o.Seeds[0])
			opts.MemBytes = s.mem
			opts.Bandwidth = s.bw
			r, err := RunMigration(opts)
			if err != nil {
				return nil, fmt.Errorf("experiments: scale ablation %s/%s: %w", s.label, mode, err)
			}
			if r.VerifyErr != nil {
				return nil, fmt.Errorf("experiments: scale ablation %s/%s verification: %w", s.label, mode, r.VerifyErr)
			}
			runs[i] = r
		}
		xen, jav := runs[0], runs[1]
		t.AddRow(s.label,
			fmtDur(xen.Report.TotalTime), fmtDur(jav.Report.TotalTime),
			fmtReduction(xen.Report.TotalTime.Seconds(), jav.Report.TotalTime.Seconds()),
			fmtBytes(xen.Report.TotalBytes()), fmtBytes(jav.Report.TotalBytes()),
			fmtReduction(float64(xen.Report.TotalBytes()), float64(jav.Report.TotalBytes())))
	}
	t.Notes = append(t.Notes,
		"a 10x network alone does not rescue pre-copy when the VM and its dirtying rate scale with it; young-gen skipping keeps its relative advantage")
	return t, nil
}

// RunPostCopy boots a VM and migrates it post-copy style (related work, §2).
// Post-copy has no pre-copy verification counterpart: the correctness
// invariant is that every page became resident, which the engine guarantees
// by construction before returning. It is a thin wrapper over RunMigration
// with Mode forced to ModePostCopy — the staged engine dispatches on Mode.
func RunPostCopy(opts RunOpts) (*Run, *migration.PostCopyStats, error) {
	opts.Mode = migration.ModePostCopy
	r, err := RunMigration(opts)
	if err != nil {
		return nil, nil, err
	}
	return r, r.Report.PostCopy, nil
}

// AblationPostCopy renders X8: the post-copy and hybrid baselines (§2)
// against pre-copy and JAVMM on derby. Post-copy wins downtime by
// construction but degrades the resumed VM while its working set is
// non-resident; hybrid's warm phase shortens that tail at the cost of some
// pre-copy traffic; JAVMM gets close to post-copy's downtime without any
// degradation tail. One RunMigration loop covers all four engines — the
// staged pipeline dispatches on Mode.
func AblationPostCopy(o Options) (*Table, error) {
	o.fillDefaults()
	prof, err := workload.Lookup("derby")
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "X8. Post-copy baseline vs pre-copy and JAVMM (derby)",
		Header: []string{"strategy", "time", "traffic", "VM downtime", "degradation", "ops during migration+60s"},
	}

	windowOps := func(r *Run) string {
		return fmt.Sprintf("%.1f", opsInWindow(r.Samples, r.MigrationStartSecond, r.MigrationStartSecond+60))
	}

	modes := []migration.Mode{
		migration.ModeVanilla, migration.ModeAppAssisted,
		migration.ModePostCopy, migration.ModeHybrid,
	}
	for _, mode := range modes {
		opts := o.runOpts(prof, mode, o.Seeds[0])
		if opts.Cooldown < 70*time.Second {
			opts.Cooldown = 70 * time.Second
		}
		r, err := RunMigration(opts)
		if err != nil {
			return nil, err
		}
		if r.VerifyErr != nil {
			return nil, fmt.Errorf("experiments: post-copy ablation %s verification: %w", mode, r.VerifyErr)
		}
		// Degradation is the guest-visible slowdown beyond the blackout:
		// for pre-copy engines the paused-thread tail (enforced GC + final
		// update), for post-copy phases the cumulative demand-fault stall.
		degradation := r.WorkloadDowntime - r.Report.VMDowntime
		if pc := r.Report.PostCopy; pc != nil {
			degradation = pc.FaultStall
		}
		t.AddRow(mode.String(),
			fmtDur(r.Report.TotalTime),
			fmtBytes(r.Report.TotalBytes()),
			fmtDur(r.Report.VMDowntime),
			fmtDur(degradation),
			windowOps(r))
		if pc := r.Report.PostCopy; pc != nil {
			switch mode {
			case migration.ModePostCopy:
				t.Notes = append(t.Notes, fmt.Sprintf(
					"post-copy: %d demand faults stalled the guest for %s; memory fully resident after %s (§2)",
					pc.Faults, fmtDur(pc.FaultStall), fmtDur(pc.ResidentAt)))
			case migration.ModeHybrid:
				t.Notes = append(t.Notes, fmt.Sprintf(
					"hybrid: warm phase left %s resident at switchover; %d demand faults stalled the guest for %s; fully resident after %s",
					fmtBytes(pc.WarmPages*mem.PageSize), pc.Faults, fmtDur(pc.FaultStall), fmtDur(pc.ResidentAt)))
			}
		}
	}
	return t, nil
}

// CacheRun is one cache-application migration outcome (X3).
type CacheRun struct {
	Mode       migration.Mode
	Report     *migration.Report
	HitAfter   float64       // hit ratio immediately after resume
	Recovery   time.Duration // time for the cache to refill completely
	VerifyErr  error
	FinalTotal float64 // ops completed in the 30 s after resume
}

// RunCacheMigration migrates a VM running the memcached-like cache app.
func RunCacheMigration(mode migration.Mode, memBytes, cacheBytes, bandwidth uint64, warmup time.Duration) (*CacheRun, error) {
	clock := simclock.New()
	dom := hypervisor.NewDomain("cache-vm", clock, mem.NewVersionStore(memBytes/mem.PageSize), 4)
	g := guestos.NewGuest(dom, guestos.LKMConfig{Clock: clock})
	app, err := cacheapp.Launch(cacheapp.Config{
		Guest:      g,
		Clock:      clock,
		CacheBytes: cacheBytes,
		Assisted:   mode == migration.ModeAppAssisted,
	})
	if err != nil {
		return nil, err
	}
	app.Run(warmup)

	dest := migration.NewDestination(dom.NumPages())
	src := &migration.Source{
		Dom:   dom,
		LKM:   g.LKM,
		Link:  netsim.NewLink(clock, bandwidth, 100*time.Microsecond),
		Clock: clock,
		Exec:  app,
		Dest:  dest,
		Cfg:   migration.Config{Mode: mode},
	}
	rep, err := src.Migrate()
	if err != nil {
		return nil, err
	}
	out := &CacheRun{Mode: mode, Report: rep, HitAfter: app.HitRatio()}
	// Purged cache pages carry no meaningful content until the app rewrites
	// them — exactly the §6 contract.
	purgedPFNs := make(map[mem.PFN]bool)
	app.Proc().AS.Walk(app.PurgedRegion(), func(va mem.VA, q mem.PFN) { purgedPFNs[q] = true })
	out.VerifyErr = migration.VerifyMigration(dom.Store(), dest.Store, rep.FinalTransfer,
		func(p mem.PFN) bool { return g.Frames.Allocated(p) && !purgedPFNs[p] })

	resumeAt := clock.Now()
	opsAt := app.TotalOps
	for app.HitRatio() < 1.0 && clock.Now()-resumeAt < 5*time.Minute {
		app.Run(time.Second)
	}
	out.Recovery = clock.Now() - resumeAt
	app.Run(30 * time.Second)
	out.FinalTotal = app.TotalOps - opsAt
	return out, nil
}

// AblationCache renders X3: cache-aware app-assisted migration vs vanilla.
func AblationCache(o Options) (*Table, error) {
	o.fillDefaults()
	t := &Table{
		Title:  "X3. Cache-aware application-assisted migration (memcached-like app, 1 GiB cache in a 2 GiB VM)",
		Header: []string{"mode", "time", "traffic", "downtime", "hit ratio after", "cache recovery"},
	}
	bw := o.Bandwidth
	if bw == 0 {
		bw = netsim.GigabitEffective
	}
	for _, mode := range []migration.Mode{migration.ModeVanilla, migration.ModeAppAssisted} {
		r, err := RunCacheMigration(mode, o.MemBytes, 1<<30, bw, 30*time.Second)
		if err != nil {
			return nil, fmt.Errorf("experiments: cache ablation %s: %w", mode, err)
		}
		if r.VerifyErr != nil {
			return nil, fmt.Errorf("experiments: cache ablation %s verification: %w", mode, r.VerifyErr)
		}
		t.AddRow(mode.String(),
			fmtDur(r.Report.TotalTime),
			fmtBytes(r.Report.TotalBytes()),
			fmtDur(r.Report.VMDowntime),
			fmt.Sprintf("%.0f%%", r.HitAfter*100),
			fmtDur(r.Recovery))
	}
	t.Notes = append(t.Notes,
		"assisted migration ships only the hot quarter of the cache; the destination pays cold misses until refill completes (§6)")
	return t, nil
}
