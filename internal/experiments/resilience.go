package experiments

import (
	"fmt"
	"time"

	"javmm/internal/faults"
	"javmm/internal/migration"
	"javmm/internal/workload"
)

// AblationResilience renders X14: the derby VM migrated while the fault
// plane injects adversity — healed partitions the retry/backoff machinery
// rides out, a collapsed link, a flaky destination, a partition that outlives
// the retry budget (clean abort: source resumed, destination discarded), and
// a swallowed LKM handshake that degrades the assisted run to vanilla
// pre-copy mid-flight (§4.2's non-responsive-application contingency).
//
// Every completed row reconciled byte-for-byte through the attribution layer
// (RunMigration refuses to return otherwise), faults and all.
func AblationResilience(o Options) (*Table, error) {
	o.fillDefaults()
	prof, err := workload.Lookup("derby")
	if err != nil {
		return nil, err
	}

	window := 500 * time.Millisecond
	partitions := func(n int) faults.Plan {
		var p faults.Plan
		for i := 0; i < n; i++ {
			p = append(p, faults.Rule{
				Site: faults.SiteLinkPartition,
				At:   time.Duration(i+1) * 4 * time.Second,
				For:  window,
			})
		}
		return p
	}

	type scenario struct {
		name       string
		mode       migration.Mode
		plan       faults.Plan
		allowAbort bool
		resume     bool
	}
	scenarios := []scenario{
		{"xen / clean", migration.ModeVanilla, nil, false, false},
		{"xen / partition x1 (500ms)", migration.ModeVanilla, partitions(1), false, false},
		{"xen / partition x2", migration.ModeVanilla, partitions(2), false, false},
		{"xen / partition x4", migration.ModeVanilla, partitions(4), false, false},
		{"xen / bandwidth 10% for 5s", migration.ModeVanilla, faults.Plan{
			{Site: faults.SiteLinkBandwidth, At: 2 * time.Second, For: 5 * time.Second, Factor: 0.1},
		}, false, false},
		{"xen / flaky destination", migration.ModeVanilla, faults.Plan{
			{Site: faults.SiteDestReceive, Nth: 1000, Count: 3},
		}, false, false},
		{"xen / partition outlives retries", migration.ModeVanilla, faults.Plan{
			{Site: faults.SiteLinkPartition, At: 2 * time.Second, For: 30 * time.Second},
		}, true, false},
		{"javmm / clean", migration.ModeAppAssisted, nil, false, false},
		{"javmm / handshake lost", migration.ModeAppAssisted, faults.Plan{
			{Site: faults.SiteLKMHandshake},
		}, false, false},
		{"xen / corrupt stream x3 (repaired)", migration.ModeVanilla, faults.Plan{
			{Site: faults.SiteCorruptPage, Nth: 100000, Count: 3},
		}, false, false},
		{"javmm / corrupt stream x3 (repaired)", migration.ModeAppAssisted, faults.Plan{
			{Site: faults.SiteCorruptPage, Nth: 100000, Count: 3},
		}, false, false},
		{"javmm / abort + resume", migration.ModeAppAssisted, faults.Plan{
			{Site: faults.SiteDestReceive, Nth: 2000, Count: 1 << 40},
		}, true, true},
	}

	t := &Table{
		Title: "X14. Migration under injected faults (derby VM, seeded backoff)",
		Header: []string{"config", "outcome", "total time", "traffic",
			"workload downtime", "retries", "backoff", "faults"},
	}
	for _, sc := range scenarios {
		opts := o.runOpts(prof, sc.mode, o.Seeds[0])
		opts.Cooldown = 0
		opts.FaultPlan = sc.plan
		opts.RecoverySeed = o.Seeds[0]
		opts.AllowAbort = sc.allowAbort
		opts.ResumeAfterAbort = sc.resume
		run, err := RunMigration(opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: resilience %q: %w", sc.name, err)
		}
		if run.VerifyErr != nil {
			return nil, fmt.Errorf("experiments: resilience %q: %w", sc.name, run.VerifyErr)
		}
		if run.ResumeVerifyErr != nil {
			return nil, fmt.Errorf("experiments: resilience %q (resumed): %w", sc.name, run.ResumeVerifyErr)
		}
		rep := run.Report

		outcome := "completed"
		downtime := fmtDur(run.WorkloadDowntime)
		totalTime := rep.TotalTime
		traffic := rep.TotalBytes()
		switch {
		case run.ResumeReport != nil:
			rs := run.ResumeReport.Resume
			outcome = fmt.Sprintf("aborted -> resumed (%d pages trusted)", rs.TrustedPages)
			downtime = fmtDur(run.ResumeReport.VMDowntime)
			totalTime += run.ResumeReport.TotalTime
			traffic += run.ResumeReport.TotalBytes()
		case run.Aborted:
			outcome = "aborted (source resumed)"
			downtime = "n/a"
		case run.Attribution.Degraded != nil:
			outcome = fmt.Sprintf("degraded -> %s", rep.EffectiveMode())
		case rep.Integrity != nil && rep.Integrity.Repairs > 0:
			outcome = fmt.Sprintf("completed (%d corruptions repaired)", rep.Integrity.Repairs)
		}
		var retries int
		var backoff time.Duration
		if rec := rep.Recovery; rec != nil {
			retries = len(rec.Retries)
			backoff = rec.BackoffTotal
		}
		t.AddRow(sc.name, outcome,
			fmtDur(totalTime),
			fmtBytes(traffic),
			downtime,
			fmt.Sprintf("%d", retries),
			fmtDur(backoff),
			fmt.Sprintf("%d", len(run.FaultEvents)))
	}
	t.Notes = append(t.Notes,
		"healed partitions cost retries+backoff but complete with the same correctness guarantees; the 30s partition exhausts the retry budget and aborts cleanly",
		"in-flight corruption is caught by the switchover digest audit and healed by bounded re-fetch before the run may report success",
		"the abort+resume row keeps the destination image alive across the abort: the continuation pays only for pages the token cannot prove intact",
		"the lost LKM handshake downgrades the assisted run to vanilla pre-copy mid-flight (paper §4.2): every page ever skipped by consent is re-queued and sent",
		"every completed row passed byte-for-byte attribution reconciliation with faults active")
	return t, nil
}
