package experiments

import (
	"fmt"
	"time"

	"javmm/internal/faults"
	"javmm/internal/migration"
	"javmm/internal/workload"
)

// AblationResilience renders X14: the derby VM migrated while the fault
// plane injects adversity — healed partitions the retry/backoff machinery
// rides out, a collapsed link, a flaky destination, a partition that outlives
// the retry budget (clean abort: source resumed, destination discarded), and
// a swallowed LKM handshake that degrades the assisted run to vanilla
// pre-copy mid-flight (§4.2's non-responsive-application contingency).
//
// Every completed row reconciled byte-for-byte through the attribution layer
// (RunMigration refuses to return otherwise), faults and all.
func AblationResilience(o Options) (*Table, error) {
	o.fillDefaults()
	prof, err := workload.Lookup("derby")
	if err != nil {
		return nil, err
	}

	window := 500 * time.Millisecond
	partitions := func(n int) faults.Plan {
		var p faults.Plan
		for i := 0; i < n; i++ {
			p = append(p, faults.Rule{
				Site: faults.SiteLinkPartition,
				At:   time.Duration(i+1) * 4 * time.Second,
				For:  window,
			})
		}
		return p
	}

	type scenario struct {
		name       string
		mode       migration.Mode
		plan       faults.Plan
		allowAbort bool
	}
	scenarios := []scenario{
		{"xen / clean", migration.ModeVanilla, nil, false},
		{"xen / partition x1 (500ms)", migration.ModeVanilla, partitions(1), false},
		{"xen / partition x2", migration.ModeVanilla, partitions(2), false},
		{"xen / partition x4", migration.ModeVanilla, partitions(4), false},
		{"xen / bandwidth 10% for 5s", migration.ModeVanilla, faults.Plan{
			{Site: faults.SiteLinkBandwidth, At: 2 * time.Second, For: 5 * time.Second, Factor: 0.1},
		}, false},
		{"xen / flaky destination", migration.ModeVanilla, faults.Plan{
			{Site: faults.SiteDestReceive, Nth: 1000, Count: 3},
		}, false},
		{"xen / partition outlives retries", migration.ModeVanilla, faults.Plan{
			{Site: faults.SiteLinkPartition, At: 2 * time.Second, For: 30 * time.Second},
		}, true},
		{"javmm / clean", migration.ModeAppAssisted, nil, false},
		{"javmm / handshake lost", migration.ModeAppAssisted, faults.Plan{
			{Site: faults.SiteLKMHandshake},
		}, false},
	}

	t := &Table{
		Title: "X14. Migration under injected faults (derby VM, seeded backoff)",
		Header: []string{"config", "outcome", "total time", "traffic",
			"workload downtime", "retries", "backoff", "faults"},
	}
	for _, sc := range scenarios {
		opts := o.runOpts(prof, sc.mode, o.Seeds[0])
		opts.Cooldown = 0
		opts.FaultPlan = sc.plan
		opts.RecoverySeed = o.Seeds[0]
		opts.AllowAbort = sc.allowAbort
		run, err := RunMigration(opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: resilience %q: %w", sc.name, err)
		}
		if run.VerifyErr != nil {
			return nil, fmt.Errorf("experiments: resilience %q: %w", sc.name, run.VerifyErr)
		}
		rep := run.Report

		outcome := "completed"
		downtime := fmtDur(run.WorkloadDowntime)
		switch {
		case run.Aborted:
			outcome = "aborted (source resumed)"
			downtime = "n/a"
		case run.Attribution.Degraded != nil:
			outcome = fmt.Sprintf("degraded -> %s", rep.EffectiveMode())
		}
		var retries int
		var backoff time.Duration
		if rec := rep.Recovery; rec != nil {
			retries = len(rec.Retries)
			backoff = rec.BackoffTotal
		}
		t.AddRow(sc.name, outcome,
			fmtDur(rep.TotalTime),
			fmtBytes(rep.TotalBytes()),
			downtime,
			fmt.Sprintf("%d", retries),
			fmtDur(backoff),
			fmt.Sprintf("%d", len(run.FaultEvents)))
	}
	t.Notes = append(t.Notes,
		"healed partitions cost retries+backoff but complete with the same correctness guarantees; the 30s partition exhausts the retry budget and aborts cleanly",
		"the lost LKM handshake downgrades the assisted run to vanilla pre-copy mid-flight (paper §4.2): every page ever skipped by consent is re-queued and sent",
		"every completed row passed byte-for-byte attribution reconciliation with faults active")
	return t, nil
}
