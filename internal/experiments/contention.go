package experiments

import (
	"fmt"
	"time"

	"javmm/internal/fleet"
	"javmm/internal/migration"
	"javmm/internal/obs/sla"
	"javmm/internal/workload"
)

// AblationContention is experiment X15: N concurrent derby migrations
// contending for one fixed-capacity gigabit backbone, driven by the
// deterministic process scheduler over the shared fabric (DESIGN.md §15).
// It sweeps the concurrent VM count and reports how total migration time
// and downtime degrade as engines split the link — and whether JAVMM's
// young-generation skipping keeps its advantage under contention (it sends
// fewer bytes through the shared bottleneck, so the saving compounds).
func AblationContention(o Options) (*Table, error) {
	o.fillDefaults()
	prof, err := workload.Lookup("derby")
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title: "X15. Contention: N concurrent migrations, one gigabit fabric",
		Header: []string{"mode", "vms", "avg total", "makespan", "avg downtime",
			"avg wl-downtime", "backbone traffic", "peak conc", "sla cost"},
	}
	model := sla.Default()
	for _, mode := range []migration.Mode{migration.ModeVanilla, migration.ModeAppAssisted} {
		for _, n := range []int{1, 2, 4} {
			profiles := make([]workload.Profile, n)
			for i := range profiles {
				profiles[i] = prof
			}
			res, err := fleet.Run(fleet.Options{
				Mode:     mode,
				Profiles: profiles,
				Seed:     o.Seeds[0],
				MemBytes: o.MemBytes,
				Warmup:   o.Warmup,
				Stagger:  500 * time.Millisecond,
				SLA:      &model,
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: contention %s/%d: %w", mode, n, err)
			}
			var total, down, wlDown time.Duration
			for i := range res.VMs {
				vm := &res.VMs[i]
				if vm.Err != nil {
					return nil, fmt.Errorf("experiments: contention %s/%d VM %s: %w", mode, n, vm.Name, vm.Err)
				}
				if vm.VerifyErr != nil {
					return nil, fmt.Errorf("experiments: contention %s/%d VM %s verification: %w", mode, n, vm.Name, vm.VerifyErr)
				}
				total += vm.Report.TotalTime
				down += vm.Report.VMDowntime
				wlDown += vm.WorkloadDowntime
			}
			nn := time.Duration(n)
			var backbone uint64
			peak := 0
			for _, lu := range res.Fabric.Links {
				backbone += lu.BytesSent
				if lu.MaxConcurrent > peak {
					peak = lu.MaxConcurrent
				}
			}
			if res.SLA == nil {
				return nil, fmt.Errorf("experiments: contention %s/%d: no SLA aggregate", mode, n)
			}
			if err := res.SLA.Reconcile(); err != nil {
				return nil, fmt.Errorf("experiments: contention %s/%d: %w", mode, n, err)
			}
			t.AddRow(mode.String(), fmt.Sprintf("%d", n),
				fmtDur(total/nn), fmtDur(res.MakeSpan),
				fmtDur(down/nn), fmtDur(wlDown/nn),
				fmtBytes(backbone), fmt.Sprintf("%d", peak),
				fmt.Sprintf("%.3f", res.SLA.Total))
		}
	}
	t.Notes = append(t.Notes,
		"fixed fabric capacity split N ways stretches every pre-copy round, giving the guests longer to re-dirty; total time grows superlinearly while JAVMM's per-VM traffic stays flat",
		"sla cost prices the whole fleet under the default model (downtime x penalty + throughput-dip integral), reconciled per VM against the run's attribution",
		"deterministic: same seed, same per-VM reports and fabric accounting, regardless of host scheduling")
	return t, nil
}
