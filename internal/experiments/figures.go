package experiments

import (
	"fmt"
	"time"

	"javmm/internal/migration"
	"javmm/internal/stats"
	"javmm/internal/workload"
)

// Options tunes the experiment suite. Defaults reproduce the paper's setup:
// 2 GiB VMs, gigabit link, migration halfway through a 10-minute run,
// ≥3 repetitions.
type Options struct {
	MemBytes  uint64
	Bandwidth uint64
	Warmup    time.Duration
	Cooldown  time.Duration
	Seeds     []int64
	// ProfileDur is the Figure 5 profiling duration (paper: 10 minutes).
	ProfileDur time.Duration
}

func (o *Options) fillDefaults() {
	if o.MemBytes == 0 {
		o.MemBytes = 2 << 30
	}
	if o.Warmup == 0 {
		o.Warmup = 300 * time.Second
	}
	if o.Cooldown == 0 {
		o.Cooldown = 100 * time.Second
	}
	if len(o.Seeds) == 0 {
		o.Seeds = []int64{1, 2, 3}
	}
	if o.ProfileDur == 0 {
		o.ProfileDur = 600 * time.Second
	}
}

func (o Options) runOpts(prof workload.Profile, mode migration.Mode, seed int64) RunOpts {
	return RunOpts{
		Profile:   prof,
		Mode:      mode,
		Seed:      seed,
		MemBytes:  o.MemBytes,
		Bandwidth: o.Bandwidth,
		Warmup:    o.Warmup,
		Cooldown:  o.Cooldown,
	}
}

// Table1 renders the paper's Table 1: the workload catalog.
func Table1() *Table {
	t := &Table{
		Title:  "Table 1. SPECjvm2008 workloads (synthetic equivalents)",
		Header: []string{"workload", "category", "description"},
	}
	for _, p := range workload.Catalog() {
		t.AddRow(p.Name, fmt.Sprintf("%d", p.Category), p.Description)
	}
	return t
}

// Figure1 reproduces the motivating experiment: vanilla Xen migration of the
// 2 GiB derby VM, reporting per-iteration duration, transfer rate and
// dirtying rate.
func Figure1(o Options) (*Table, error) {
	o.fillDefaults()
	prof, err := workload.Lookup("derby")
	if err != nil {
		return nil, err
	}
	run, err := RunMigration(o.runOpts(prof, migration.ModeVanilla, o.Seeds[0]))
	if err != nil {
		return nil, err
	}
	if run.VerifyErr != nil {
		return nil, fmt.Errorf("experiments: figure 1 verification: %w", run.VerifyErr)
	}
	t := &Table{
		Title:  "Figure 1. Vanilla Xen migration of a 2GB derby VM (per iteration)",
		Header: []string{"iter", "duration", "sent", "transfer rate", "dirtying rate"},
	}
	for _, it := range run.Report.Iterations {
		t.AddRow(
			fmt.Sprintf("%d%s", it.Index, lastMark(it.Last)),
			fmtDur(it.Duration),
			fmtBytes(it.BytesOnWire),
			fmt.Sprintf("%.0f MB/s", it.TransferRate()/1e6),
			fmt.Sprintf("%.0f MB/s", it.DirtyRate()*4096/1e6),
		)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("total %s in %s, downtime %s",
			fmtBytes(run.Report.TotalBytes()), fmtDur(run.Report.TotalTime), fmtDur(run.WorkloadDowntime)))
	return t, nil
}

func lastMark(last bool) string {
	if last {
		return "*"
	}
	return ""
}

// Figure5 reproduces the heap-usage profiling of §4.2: average young/old
// consumption (5a), garbage vs live per minor GC (5b) and minor GC duration
// (5c) for all nine workloads.
func Figure5(o Options) (*Table, error) {
	o.fillDefaults()
	t := &Table{
		Title: "Figure 5. Java heap usage and GC behaviour (2GB VM, 1GB max young)",
		Header: []string{"workload", "young avg", "old avg",
			"garbage/GC", "live/GC", "garbage %", "minor GC time", "GC interval"},
	}
	for _, prof := range workload.Catalog() {
		hp, err := ProfileHeap(prof, o.ProfileDur, o.MemBytes, o.Seeds[0])
		if err != nil {
			return nil, err
		}
		t.AddRow(
			hp.Workload,
			fmtMiB(hp.AvgYoungCommitted),
			fmtMiB(hp.AvgOldUsed),
			fmtMiB(hp.AvgGarbagePerGC),
			fmtMiB(hp.AvgLivePerGC),
			fmt.Sprintf("%.1f%%", hp.GarbageFraction*100),
			fmtDur(hp.AvgMinorGCDuration),
			fmt.Sprintf("%.1f s", hp.GCIntervalSeconds),
		)
	}
	return t, nil
}

// Figure8and9 reproduces the migration-progress comparison on the compiler
// workload (512 MiB young generation, Table 3 setting): Figure 8's iteration
// timeline and Figure 9's per-iteration memory disposition, for Xen and
// JAVMM.
func Figure8and9(o Options) (fig8, fig9 *Table, err error) {
	o.fillDefaults()
	prof, err := workload.Lookup("compiler")
	if err != nil {
		return nil, nil, err
	}
	runs := make(map[string]*Run, 2)
	for _, mode := range []migration.Mode{migration.ModeVanilla, migration.ModeAppAssisted} {
		opts := o.runOpts(prof, mode, o.Seeds[0])
		opts.MaxYoungOverride = 512 << 20
		r, err := RunMigration(opts)
		if err != nil {
			return nil, nil, err
		}
		if r.VerifyErr != nil {
			return nil, nil, fmt.Errorf("experiments: figure 8 %s verification: %w", mode, r.VerifyErr)
		}
		runs[mode.String()] = r
	}

	fig8 = &Table{
		Title:  "Figure 8. Progress of migrating the compiler VM (one run per mode)",
		Header: []string{"mode", "iter", "start", "duration", "traffic"},
	}
	fig9 = &Table{
		Title:  "Figure 9. Memory processed per iteration (compiler VM)",
		Header: []string{"mode", "iter", "transferred", "skipped (already dirtied)", "skipped (young gen)"},
	}
	for _, mode := range []string{"xen", "javmm"} {
		r := runs[mode]
		for _, it := range r.Report.Iterations {
			fig8.AddRow(mode, fmt.Sprintf("%d%s", it.Index, lastMark(it.Last)),
				fmtDur(it.Start), fmtDur(it.Duration), fmtBytes(it.BytesOnWire))
			fig9.AddRow(mode, fmt.Sprintf("%d%s", it.Index, lastMark(it.Last)),
				fmtBytes(it.PagesSent*4096),
				fmtBytes(it.PagesSkippedDirty*4096),
				fmtBytes(it.PagesSkippedBitmap*4096))
		}
		fig8.Notes = append(fig8.Notes, fmt.Sprintf("%s: %d iterations, %s total, %s traffic",
			mode, len(r.Report.Iterations), fmtDur(r.Report.TotalTime), fmtBytes(r.Report.TotalBytes())))
	}
	return fig8, fig9, nil
}

// Comparison aggregates Xen-vs-JAVMM runs of one workload across seeds.
type Comparison struct {
	Workload string
	Xen      []*Run
	Javmm    []*Run
}

// MaxYoungOverrides carries Table 3's per-workload young-generation caps.
type MaxYoungOverrides map[string]uint64

// CompareWorkloads migrates each profile under both modes for every seed.
func CompareWorkloads(profiles []workload.Profile, o Options, overrides MaxYoungOverrides) ([]Comparison, error) {
	o.fillDefaults()
	var out []Comparison
	for _, prof := range profiles {
		c := Comparison{Workload: prof.Name}
		for _, seed := range o.Seeds {
			for _, mode := range []migration.Mode{migration.ModeVanilla, migration.ModeAppAssisted} {
				opts := o.runOpts(prof, mode, seed)
				if ov, ok := overrides[prof.Name]; ok {
					opts.MaxYoungOverride = ov
				}
				r, err := RunMigration(opts)
				if err != nil {
					return nil, fmt.Errorf("experiments: %s/%s seed %d: %w", prof.Name, mode, seed, err)
				}
				if r.VerifyErr != nil {
					return nil, fmt.Errorf("experiments: %s/%s seed %d verification: %w",
						prof.Name, mode, seed, r.VerifyErr)
				}
				if mode == migration.ModeVanilla {
					c.Xen = append(c.Xen, r)
				} else {
					c.Javmm = append(c.Javmm, r)
				}
			}
		}
		out = append(out, c)
	}
	return out, nil
}

// metric extracts a float from a run.
type metric func(*Run) float64

func collect(runs []*Run, m metric) []float64 {
	out := make([]float64, len(runs))
	for i, r := range runs {
		out[i] = m(r)
	}
	return out
}

// comparisonTable renders a Figure 10/12-style table for one metric.
func comparisonTable(title, unit string, cs []Comparison, m metric) *Table {
	t := &Table{
		Title:  title,
		Header: []string{"workload", "xen (mean ±CI90)", "javmm (mean ±CI90)", "reduction"},
	}
	for _, c := range cs {
		xm, xh := stats.CI90(collect(c.Xen, m))
		jm, jh := stats.CI90(collect(c.Javmm, m))
		t.AddRow(c.Workload,
			fmt.Sprintf("%.2f ±%.2f %s", xm, xh, unit),
			fmt.Sprintf("%.2f ±%.2f %s", jm, jh, unit),
			fmtReduction(xm, jm),
		)
	}
	return t
}

// DowntimeAttribution renders the exact decomposition behind Figure 10(c):
// per workload and mode, the mean seconds of workload downtime charged to
// each component. Every run's components reconcile tick-for-tick with its
// total (RunMigration enforces it), so each row's columns sum to its total
// up to display rounding.
func DowntimeAttribution(cs []Comparison) *Table {
	t := &Table{
		Title: "Figure 10(c) attribution. Workload downtime by component (mean s)",
		Header: []string{"workload", "mode", "enforced-gc", "final-update",
			"stop-and-copy", "resumption", "total"},
	}
	meanDur := func(runs []*Run, f func(*Run) time.Duration) float64 {
		var s float64
		for _, r := range runs {
			s += f(r).Seconds()
		}
		return s / float64(len(runs))
	}
	add := func(wl, mode string, runs []*Run) {
		if len(runs) == 0 {
			return
		}
		t.AddRow(wl, mode,
			fmt.Sprintf("%.3f", meanDur(runs, func(r *Run) time.Duration { return r.Attribution.EnforcedGC })),
			fmt.Sprintf("%.3f", meanDur(runs, func(r *Run) time.Duration { return r.Attribution.FinalUpdate })),
			fmt.Sprintf("%.3f", meanDur(runs, func(r *Run) time.Duration { return r.Attribution.StopAndCopy })),
			fmt.Sprintf("%.3f", meanDur(runs, func(r *Run) time.Duration { return r.Attribution.Resumption })),
			fmt.Sprintf("%.3f", meanDur(runs, func(r *Run) time.Duration { return r.Attribution.WorkloadDowntime })),
		)
	}
	for _, c := range cs {
		add(c.Workload, "xen", c.Xen)
		add(c.Workload, "javmm", c.Javmm)
	}
	return t
}

// Figure10 renders migration time, traffic and workload downtime for the
// three representative workloads (derby, crypto, scimark) plus the §5.3
// extras: the downtime attribution, daemon CPU time and framework memory
// overhead (X1).
func Figure10(cs []Comparison) (timeT, trafficT, downT, attribT, cpuT *Table) {
	timeT = comparisonTable("Figure 10(a). Total migration time", "s", cs,
		func(r *Run) float64 { return r.Report.TotalTime.Seconds() })
	trafficT = comparisonTable("Figure 10(b). Total migration traffic", "GB", cs,
		func(r *Run) float64 { return float64(r.Report.TotalBytes()) / 1e9 })
	downT = comparisonTable("Figure 10(c). Workload downtime", "s", cs,
		func(r *Run) float64 { return r.WorkloadDowntime.Seconds() })
	attribT = DowntimeAttribution(cs)
	cpuT = comparisonTable("X1. Migration daemon CPU time", "s", cs,
		func(r *Run) float64 { return r.Report.CPUTime.Seconds() })
	for _, c := range cs {
		if len(c.Javmm) > 0 {
			r := c.Javmm[0]
			cpuT.Notes = append(cpuT.Notes, fmt.Sprintf(
				"%s: JAVMM memory overhead = %s transfer bitmap + %s PFN cache",
				c.Workload, fmtBytes(r.LKMBitmapBytes), fmtBytes(r.LKMCacheBytes)))
		}
	}
	return timeT, trafficT, downT, attribT, cpuT
}

// Table2 renders the observed heap state at migration time for the Figure 10
// workloads.
func Table2(cs []Comparison) *Table {
	t := &Table{
		Title:  "Table 2. Heap observed when migrated (max young 1 GiB)",
		Header: []string{"workload", "young gen", "old gen"},
	}
	for _, c := range cs {
		if len(c.Xen) == 0 {
			continue
		}
		r := c.Xen[0]
		t.AddRow(c.Workload, fmtMiB(r.YoungCommittedAtMigration), fmtMiB(r.OldUsedAtMigration))
	}
	return t
}

// Table3 renders the Table 3 settings/observations for the young-size sweep.
func Table3(cs []Comparison, overrides MaxYoungOverrides) *Table {
	t := &Table{
		Title:  "Table 3. Category-1 workloads with different max young sizes",
		Header: []string{"workload", "max young", "young observed", "old observed"},
	}
	for _, c := range cs {
		if len(c.Xen) == 0 {
			continue
		}
		r := c.Xen[0]
		t.AddRow(c.Workload, fmtMiB(overrides[c.Workload]),
			fmtMiB(r.YoungCommittedAtMigration), fmtMiB(r.OldUsedAtMigration))
	}
	return t
}

// Figure11 renders the throughput timelines around migration: ops/sec per
// virtual second, for the first seed of each mode.
func Figure11(cs []Comparison, window int) []*Table {
	var out []*Table
	for _, c := range cs {
		if len(c.Xen) == 0 || len(c.Javmm) == 0 {
			continue
		}
		x, j := c.Xen[0], c.Javmm[0]
		t := &Table{
			Title:  fmt.Sprintf("Figure 11. Throughput of %s around migration (begins at %d s)", c.Workload, x.MigrationStartSecond),
			Header: []string{"second", "xen ops/s", "javmm ops/s"},
		}
		start := x.MigrationStartSecond - window/4
		if start < 0 {
			start = 0
		}
		end := x.MigrationStartSecond + window
		xs := indexSamples(x.Samples)
		js := indexSamples(j.Samples)
		for s := start; s <= end; s++ {
			t.AddRow(fmt.Sprintf("%d", s),
				fmt.Sprintf("%.2f", xs[s]),
				fmt.Sprintf("%.2f", js[s]))
		}
		// The observed downtime: the longest run of near-zero seconds.
		thr := 0.05 * stats.Max(collect(c.Xen, func(r *Run) float64 { return r.Opts.Profile.OpsPerSec }))
		t.Notes = append(t.Notes, fmt.Sprintf(
			"observed stalls (seconds with <5%% of nominal throughput): xen %d s, javmm %d s",
			workload.LongestStall(x.Samples, thr),
			workload.LongestStall(j.Samples, thr)))
		out = append(out, t)
	}
	return out
}

func indexSamples(ss []workload.Sample) map[int]float64 {
	out := make(map[int]float64, len(ss))
	for _, s := range ss {
		out[s.Second] = s.Ops
	}
	return out
}

// Figure12 renders the young-generation-size sweep (xml 1.5 GiB, derby
// 1 GiB, compiler 0.5 GiB).
func Figure12(cs []Comparison) (timeT, trafficT, downT *Table) {
	timeT = comparisonTable("Figure 12(a). Migration time vs young size", "s", cs,
		func(r *Run) float64 { return r.Report.TotalTime.Seconds() })
	trafficT = comparisonTable("Figure 12(b). Migration traffic vs young size", "GB", cs,
		func(r *Run) float64 { return float64(r.Report.TotalBytes()) / 1e9 })
	downT = comparisonTable("Figure 12(c). Workload downtime vs young size", "s", cs,
		func(r *Run) float64 { return r.WorkloadDowntime.Seconds() })
	return timeT, trafficT, downT
}

// Table3Overrides returns the paper's Table 3 young-generation caps.
func Table3Overrides() MaxYoungOverrides {
	return MaxYoungOverrides{
		"xml":      1536 << 20,
		"derby":    1024 << 20,
		"compiler": 512 << 20,
	}
}

// Figure10Workloads returns the §5.3 representative profiles.
func Figure10Workloads() ([]workload.Profile, error) {
	var out []workload.Profile
	for _, name := range []string{"derby", "crypto", "scimark"} {
		p, err := workload.Lookup(name)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// Figure12Workloads returns the Table 3 category-1 profiles.
func Figure12Workloads() ([]workload.Profile, error) {
	var out []workload.Profile
	for _, name := range []string{"xml", "derby", "compiler"} {
		p, err := workload.Lookup(name)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
