package experiments

import (
	"fmt"
	"time"

	"javmm/internal/fleet"
	"javmm/internal/migration"
	"javmm/internal/netsim"
	"javmm/internal/obs/sla"
	"javmm/internal/workload"
)

// AblationOrchestration is experiment X16: one 4-VM host evacuation executed
// under the three launch orderings the orchestrator supports (DESIGN.md §17).
// The VMs carry phase-staggered activity cycles — the diurnal quiet windows
// the cycle-aware scheduler exploits. Naive-parallel launches everything at
// the warmup instant into full-activity guests sharing one backbone;
// admission-controlled serializes behind the per-link/per-host caps;
// cycle-aware additionally times each launch into its VM's quiet window and
// defers predicted non-convergers (bounded by QuietHorizon). The table
// reports the makespan/downtime/SLA-cost trade: cycle-aware pays makespan
// (it waits for windows) to win worst-VM downtime and aggregate fleet cost.
// The win materializes in JAVMM mode — its transfers are short enough to fit
// inside a quiet window — while vanilla pre-copy outlasts every window and
// gains nothing from launch timing, making application assistance a
// prerequisite for cycle-aware orchestration, not an orthogonal feature.
func AblationOrchestration(o Options) (*Table, error) {
	o.fillDefaults()
	t := &Table{
		Title: "X16. Orchestration: 4-VM evacuation, naive vs admission vs cycle-aware",
		Header: []string{"mode", "ordering", "makespan", "worst wl-downtime",
			"avg wl-downtime", "deferrals", "quiet/forced", "backbone traffic", "sla cost"},
	}
	for _, mode := range []migration.Mode{migration.ModeVanilla, migration.ModeAppAssisted} {
		for _, ord := range []fleet.Ordering{fleet.OrderNaive, fleet.OrderAdmission, fleet.OrderCycleAware} {
			res, err := orchestrationPlan(o, mode, ord)
			if err != nil {
				return nil, fmt.Errorf("experiments: orchestration %s/%s: %w", mode, ord, err)
			}
			var wlDown, worst time.Duration
			deferrals, quiet, forced := 0, 0, 0
			for i := range res.Moves {
				m := &res.Moves[i]
				if m.Err != nil {
					return nil, fmt.Errorf("experiments: orchestration %s/%s move %s: %w", mode, ord, m.Name, m.Err)
				}
				if m.VerifyErr != nil {
					return nil, fmt.Errorf("experiments: orchestration %s/%s move %s verification: %w", mode, ord, m.Name, m.VerifyErr)
				}
				wlDown += m.WorkloadDowntime
				if m.WorkloadDowntime > worst {
					worst = m.WorkloadDowntime
				}
				deferrals += m.Deferrals
				if m.QuietLaunch {
					quiet++
				}
				if m.Forced {
					forced++
				}
			}
			var backbone uint64
			for _, lu := range res.Fabric.Links {
				backbone += lu.BytesSent
			}
			if res.SLA == nil {
				return nil, fmt.Errorf("experiments: orchestration %s/%s: no SLA aggregate", mode, ord)
			}
			if err := res.SLA.Reconcile(); err != nil {
				return nil, fmt.Errorf("experiments: orchestration %s/%s: %w", mode, ord, err)
			}
			t.AddRow(mode.String(), ord.String(),
				fmtDur(res.MakeSpan), fmtDur(worst),
				fmtDur(wlDown/time.Duration(len(res.Moves))),
				fmt.Sprintf("%d", deferrals),
				fmt.Sprintf("%d/%d", quiet, forced),
				fmtBytes(backbone),
				fmt.Sprintf("%.3f", res.SLA.Total))
		}
	}
	t.Notes = append(t.Notes,
		"javmm rows are the acceptance result: a javmm migration fits inside one 30 s quiet window, so a cycle-aware launch finishes its stop-and-copy while the guest is still at 10% activity — beating naive on aggregate sla cost and worst-VM downtime, at the price of makespan",
		"vanilla rows show why application assistance is a prerequisite: full pre-copy outlasts every quiet window (the young generation re-dirties for minutes under contention), so launch timing degenerates to noise and cycle-aware buys nothing",
		"deterministic: the whole plan — per-VM reports, scheduling records, fleet cost — replays byte-identically at the same seed")
	return t, nil
}

// orchestrationPlan executes the X16 evacuation: four cyclic VMs on one
// source host, two destination hosts in another rack, one gigabit backbone.
func orchestrationPlan(o Options, mode migration.Mode, ord fleet.Ordering) (*fleet.PlanResult, error) {
	c := &fleet.Cluster{
		Hosts: []fleet.HostSpec{
			{Name: "src", Rack: "a", RAMBytes: 64 << 30},
			{Name: "d1", Rack: "b", RAMBytes: 64 << 30},
			{Name: "d2", Rack: "b", RAMBytes: 64 << 30},
		},
		Links: []fleet.LinkSpec{{
			Name:      "backbone",
			Bandwidth: netsim.GigabitEffective,
			Latency:   100 * time.Microsecond,
			Hosts:     []string{"src", "d1", "d2"},
		}},
	}
	// Phase-staggered quiet windows: 30 s of a 120 s period at 10%
	// activity, offset 30 s per VM, so the four windows tile the timeline
	// back to back and at most one VM is quiet at any instant. The window
	// is longer than one uncontended 2 GiB migration (~20 s), which is the
	// property that matters: downtime is set by the dirty rate at the END
	// of pre-copy, so a well-timed launch completes its stop-and-copy
	// while the guest is still quiet. A naive launch catches at least
	// three guests at full activity; cycle-aware pipelines the plan window
	// by window.
	for i, wl := range []string{"compress", "crypto", "mpeg", "serial"} {
		c.VMs = append(c.VMs, fleet.VMSpec{
			Name:     fmt.Sprintf("vm%d", i),
			Host:     "src",
			Workload: wl,
			MemBytes: o.MemBytes,
			Cycle: workload.CycleSpec{
				Period:      120 * time.Second,
				QuietStart:  60 * time.Second,
				QuietLen:    30 * time.Second,
				QuietFactor: 0.1,
				Phase:       time.Duration(i) * 30 * time.Second,
			},
		})
	}
	plan, err := fleet.ParseMigrationPlan("evacuate host src")
	if err != nil {
		return nil, err
	}
	model := sla.Default()
	return fleet.Orchestrate(fleet.OrchestratorOptions{
		Cluster:         c,
		Plan:            plan,
		Mode:            mode,
		Seed:            o.Seeds[0],
		Ordering:        ord,
		Admission:       fleet.AdmissionPolicy{MaxPerLink: 2, MaxPerHost: 2},
		Warmup:          o.Warmup,
		DecisionQuantum: 250 * time.Millisecond,
		QuietHorizon:    4 * time.Minute,
		SLA:             &model,
	})
}
