package experiments

import (
	"encoding/csv"
	"fmt"
	"strings"
	"time"
)

// Table is a printable experiment result: an ASCII-rendered equivalent of a
// paper table or figure's data.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render produces the aligned ASCII form.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as RFC-4180 CSV (header row first, notes omitted) —
// the machine-readable form behind regenerating the paper's figures with any
// plotting tool.
func (t *Table) CSV() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	w.Write(t.Header)
	for _, row := range t.Rows {
		w.Write(row)
	}
	w.Flush()
	return b.String()
}

// Slug returns a filesystem-friendly name derived from the title up to any
// parenthetical ("Figure 10(a). Total migration time" → a unique kebab-case
// name).
func (t *Table) Slug() string {
	head, _, _ := strings.Cut(t.Title, " (")
	// Keep it reasonably short: at most six words.
	words := strings.Fields(head)
	if len(words) > 6 {
		words = words[:6]
	}
	head = strings.Join(words, " ")
	var b strings.Builder
	lastDash := false
	for _, r := range strings.ToLower(head) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
			lastDash = false
		default:
			if !lastDash && b.Len() > 0 {
				b.WriteByte('-')
				lastDash = true
			}
		}
	}
	return strings.TrimSuffix(b.String(), "-")
}

// fmtBytes renders a byte count in MB/GB with one decimal (decimal units, as
// migration traffic is usually reported).
func fmtBytes(b uint64) string {
	switch {
	case b >= 1e9:
		return fmt.Sprintf("%.2f GB", float64(b)/1e9)
	case b >= 1e6:
		return fmt.Sprintf("%.1f MB", float64(b)/1e6)
	case b >= 1e3:
		return fmt.Sprintf("%.1f KB", float64(b)/1e3)
	default:
		return fmt.Sprintf("%d B", b)
	}
}

// fmtMiB renders a byte count in whole MiB (heap sizes).
func fmtMiB(b uint64) string { return fmt.Sprintf("%d MiB", b>>20) }

// fmtDur renders a duration with sensible precision for the tables.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2f s", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1f ms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%d µs", d.Microseconds())
	}
}

// fmtReduction renders the JAVMM-vs-Xen reduction percentage the paper
// quotes (positive = JAVMM smaller/better).
func fmtReduction(xen, javmm float64) string {
	if xen == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.0f%%", (xen-javmm)/xen*100)
}
