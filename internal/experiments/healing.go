package experiments

import (
	"fmt"
	"time"

	"javmm/internal/faults"
	"javmm/internal/fleet"
	"javmm/internal/migration"
	"javmm/internal/netsim"
	"javmm/internal/obs/sla"
)

// failedMovePenalty prices one move the plan could not complete: the VM is
// stranded on the host the plan was evacuating, so the operator's exposure —
// hardware slated for decommission still carrying production load — is an
// SLA breach in its own class, an order of magnitude above the priced cost
// of any completed migration in this cluster. The constant makes the arms
// comparable on one number: priced cost = sla.Cost aggregate over completed
// moves + penalty x stranded moves.
const failedMovePenalty = 10.0

// AblationHealing is experiment X17: a two-VM host evacuation whose
// preferred destination crashes at launch time and stays down (the fault
// window re-arms on every attempt, the modelled "host died mid-plan, not
// coming back"), executed under three healing policies:
//
//   - no-retry: the self-healing layer off; the move into the dead host
//     fails on its first attempt and the VM is stranded at the source.
//   - retry-same: healing on, relocation off; every retry re-selects the
//     same dead host, burns its backoff budget and exhausts MaxAttempts.
//   - relocate: full healing; the first failure is classified permanent
//     (destination lost), the dead host is excluded, the move re-selects
//     the surviving destination, degrades its stale resume token to a
//     clean first copy there and completes digest-verified.
//
// The table prices each arm as the SLA aggregate over completed moves plus
// failedMovePenalty per stranded VM. Relocation is the only arm that
// completes the evacuation, and the acceptance criterion — relocate beats
// no-retry on the priced metric — is checked by TestAblationHealingWins.
func AblationHealing(o Options) (*Table, error) {
	o.fillDefaults()
	t := &Table{
		Title: "X17. Self-healing: 2-VM evacuation with the preferred destination crashed",
		Header: []string{"mode", "policy", "completed", "stranded", "attempts",
			"relocations", "backoff", "makespan", "priced cost"},
	}
	for _, mode := range []migration.Mode{migration.ModeVanilla, migration.ModeAppAssisted} {
		for _, arm := range []string{"no-retry", "retry-same", "relocate"} {
			res, err := healingPlan(o, mode, arm)
			if err != nil {
				return nil, fmt.Errorf("experiments: healing %s/%s: %w", mode, arm, err)
			}
			completed, stranded, attempts, relocations := 0, 0, 0, 0
			var backoff time.Duration
			for i := range res.Moves {
				m := &res.Moves[i]
				if m.Err != nil {
					stranded++
				} else {
					if m.VerifyErr != nil {
						return nil, fmt.Errorf("experiments: healing %s/%s move %s verification: %w", mode, arm, m.Name, m.VerifyErr)
					}
					completed++
				}
				if n := len(m.Attempts); n > 0 {
					attempts += n
				} else {
					attempts++ // no-retry arm records no attempt entries
				}
				relocations += m.Relocations
				backoff += m.HealBackoff
			}
			cost, err := healingCost(res, stranded)
			if err != nil {
				return nil, fmt.Errorf("experiments: healing %s/%s: %w", mode, arm, err)
			}
			t.AddRow(mode.String(), arm,
				fmt.Sprintf("%d/%d", completed, len(res.Moves)),
				fmt.Sprintf("%d", stranded),
				fmt.Sprintf("%d", attempts),
				fmt.Sprintf("%d", relocations),
				fmtDur(backoff),
				fmtDur(res.MakeSpan),
				fmt.Sprintf("%.3f", cost))
		}
	}
	t.Notes = append(t.Notes,
		"relocate is the acceptance row: the first attempt fails permanently (destination lost), the healer excludes the dead host, re-places onto the survivor, degrades the stale resume token to a clean first copy (destination binding) and completes the evacuation — the only arm with 0 stranded VMs",
		fmt.Sprintf("priced cost = sla aggregate over completed moves + %.0f per stranded VM (a VM left on hardware the plan was evacuating); retry-same also pays the backoff it burned re-dialing a dead host", failedMovePenalty),
		"the crash window re-arms on every attempt (the injector re-bases at each launch), so retry-same can never win here: it models a host that is down for good, the case destination re-selection exists for",
		"deterministic: attempts, backoffs, relocations and the priced costs replay byte-identically at the same seed")
	return t, nil
}

// healingPlan executes the X17 evacuation under one healing policy: two VMs
// on one source, two destinations, one gigabit backbone, the preferred
// destination (d1, first in declaration order, so bestFit picks it for the
// first move) crashed from launch for longer than any plan deadline.
func healingPlan(o Options, mode migration.Mode, arm string) (*fleet.PlanResult, error) {
	c := &fleet.Cluster{
		Hosts: []fleet.HostSpec{
			{Name: "src", Rack: "a", RAMBytes: 64 << 30},
			{Name: "d1", Rack: "b", RAMBytes: 64 << 30},
			{Name: "d2", Rack: "b", RAMBytes: 64 << 30},
		},
		Links: []fleet.LinkSpec{{
			Name:      "backbone",
			Bandwidth: netsim.GigabitEffective,
			Latency:   100 * time.Microsecond,
			Hosts:     []string{"src", "d1", "d2"},
		}},
	}
	for i, wl := range []string{"mpeg", "compress"} {
		c.VMs = append(c.VMs, fleet.VMSpec{
			Name:     fmt.Sprintf("vm%d", i),
			Host:     "src",
			Workload: wl,
			MemBytes: o.MemBytes,
		})
	}
	plan, err := fleet.ParseMigrationPlan("evacuate host src")
	if err != nil {
		return nil, err
	}
	model := sla.Default()
	oo := fleet.OrchestratorOptions{
		Cluster:   c,
		Plan:      plan,
		Mode:      mode,
		Seed:      o.Seeds[0],
		Ordering:  fleet.OrderAdmission,
		Admission: fleet.AdmissionPolicy{MaxPerLink: 1, MaxPerHost: 1},
		Warmup:    o.Warmup,
		SLA:       &model,
		FaultPlan: faults.Plan{
			{Site: faults.SiteHostCrash, For: time.Hour, Host: "d1"},
		},
	}
	switch arm {
	case "no-retry":
		// Healing off; keep resumable aborts on so the stranded move still
		// aborts cleanly with a minted token, like the healed arms.
		oo.Engine.Recovery.EnableResume = true
	case "retry-same":
		oo.Retry = fleet.RetryPolicy{Enabled: true, DisableRelocation: true}
	case "relocate":
		oo.Retry = fleet.RetryPolicy{Enabled: true}
	default:
		return nil, fmt.Errorf("unknown healing arm %q", arm)
	}
	return fleet.Orchestrate(oo)
}

// healingCost prices one arm: the SLA aggregate (completed moves only — the
// orchestrator skips failed moves) plus the stranded-VM penalty.
func healingCost(res *fleet.PlanResult, stranded int) (float64, error) {
	if res.SLA == nil {
		return 0, fmt.Errorf("no SLA aggregate")
	}
	if err := res.SLA.Reconcile(); err != nil {
		return 0, err
	}
	return res.SLA.Total + failedMovePenalty*float64(stranded), nil
}
