package javmm_test

import (
	"testing"
	"time"

	"javmm"
)

func bootDerby(t *testing.T, assisted bool) *javmm.VM {
	t.Helper()
	prof, err := javmm.Workload("derby")
	if err != nil {
		t.Fatal(err)
	}
	vm, err := javmm.BootVM(javmm.BootConfig{Profile: prof, Assisted: assisted, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	vm.Driver.Run(90 * time.Second)
	if vm.Driver.Err != nil {
		t.Fatal(vm.Driver.Err)
	}
	return vm
}

func TestPublicAPICatalog(t *testing.T) {
	if len(javmm.Workloads()) != 9 {
		t.Fatalf("workloads = %d", len(javmm.Workloads()))
	}
	names := javmm.WorkloadNames()
	if names[0] != "derby" {
		t.Fatalf("names = %v", names)
	}
	if _, err := javmm.Workload("nosuch"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestPublicAPIMigrateXen(t *testing.T) {
	vm := bootDerby(t, false)
	res, err := javmm.Migrate(vm, javmm.MigrateOptions{Mode: javmm.ModeXen})
	if err != nil {
		t.Fatal(err)
	}
	if res.VerifyErr != nil {
		t.Fatal(res.VerifyErr)
	}
	if res.TotalTime <= 0 || res.TotalBytes() == 0 {
		t.Fatalf("result: %+v", res)
	}
	if res.EnforcedGC != 0 {
		t.Fatal("vanilla migration performed an enforced GC")
	}
}

func TestPublicAPIMigrateJAVMM(t *testing.T) {
	vm := bootDerby(t, true)
	res, err := javmm.Migrate(vm, javmm.MigrateOptions{Mode: javmm.ModeJAVMM})
	if err != nil {
		t.Fatal(err)
	}
	if res.VerifyErr != nil {
		t.Fatal(res.VerifyErr)
	}
	if res.EnforcedGC <= 0 {
		t.Fatal("no enforced GC recorded")
	}
	if res.WorkloadDowntime <= res.VMDowntime {
		t.Fatal("workload downtime must include the enforced GC")
	}
	// The VM keeps running after migration.
	before := vm.Driver.TotalOps
	vm.Driver.Run(10 * time.Second)
	if vm.Driver.TotalOps <= before {
		t.Fatal("VM not running after migration")
	}
}

func TestPublicAPIRepeatedMigration(t *testing.T) {
	vm := bootDerby(t, true)
	for round := 1; round <= 2; round++ {
		res, err := javmm.Migrate(vm, javmm.MigrateOptions{Mode: javmm.ModeJAVMM})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if res.VerifyErr != nil {
			t.Fatalf("round %d: %v", round, res.VerifyErr)
		}
		vm.Driver.Run(30 * time.Second)
		if vm.Driver.Err != nil {
			t.Fatalf("round %d: %v", round, vm.Driver.Err)
		}
	}
}

func TestPublicAPIJAVMMRequiresAgent(t *testing.T) {
	vm := bootDerby(t, false)
	// No agent: the LKM times out waiting for suspension-readiness and
	// falls back to full transfer — migration still completes correctly.
	res, err := javmm.Migrate(vm, javmm.MigrateOptions{Mode: javmm.ModeJAVMM})
	if err != nil {
		t.Fatal(err)
	}
	if res.VerifyErr != nil {
		t.Fatal(res.VerifyErr)
	}
}

func TestPublicAPISkipVerifyAndEngineOptions(t *testing.T) {
	vm := bootDerby(t, true)
	res, err := javmm.Migrate(vm, javmm.MigrateOptions{
		Mode:       javmm.ModeJAVMM,
		SkipVerify: true,
		Latency:    time.Millisecond,
		Engine: javmm.EngineConfig{
			MaxIterations: 10,
			ChunkPages:    256,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.VerifyErr != nil {
		t.Fatal("SkipVerify still verified")
	}
	if res.LiveIterations() > 12 {
		t.Fatalf("engine override ignored: %d live iterations", res.LiveIterations())
	}
}

func TestPublicAPICancelledMigration(t *testing.T) {
	vm := bootDerby(t, false)
	_, err := javmm.Migrate(vm, javmm.MigrateOptions{
		Mode:   javmm.ModeXen,
		Engine: javmm.EngineConfig{CancelAfter: 2 * time.Second},
	})
	if err == nil {
		t.Fatal("cancelled migration reported success")
	}
	// The VM keeps running at the source and can be migrated again.
	vm.Driver.Run(5 * time.Second)
	if vm.Driver.Err != nil {
		t.Fatal(vm.Driver.Err)
	}
	res, err := javmm.Migrate(vm, javmm.MigrateOptions{Mode: javmm.ModeXen})
	if err != nil {
		t.Fatal(err)
	}
	if res.VerifyErr != nil {
		t.Fatal(res.VerifyErr)
	}
}

func TestPublicAPIFasterLink(t *testing.T) {
	a := bootDerby(t, false)
	slow, err := javmm.Migrate(a, javmm.MigrateOptions{Mode: javmm.ModeXen})
	if err != nil {
		t.Fatal(err)
	}
	b := bootDerby(t, false)
	fast, err := javmm.Migrate(b, javmm.MigrateOptions{
		Mode:      javmm.ModeXen,
		Bandwidth: javmm.TenGigabitEthernet,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fast.TotalTime >= slow.TotalTime {
		t.Fatalf("10GbE migration (%v) not faster than 1GbE (%v)", fast.TotalTime, slow.TotalTime)
	}
}

func TestPublicAPIPostCopy(t *testing.T) {
	vm := bootDerby(t, false)
	res, pc, err := javmm.MigratePostCopy(vm, javmm.MigrateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if pc == nil || pc.Faults == 0 {
		t.Fatalf("post-copy stats = %+v", pc)
	}
	// Post-copy downtime is far below pre-copy's for this workload.
	if res.VMDowntime > time.Second {
		t.Fatalf("post-copy downtime = %v", res.VMDowntime)
	}
	// The VM keeps running afterwards.
	before := vm.Driver.TotalOps
	vm.Driver.Run(5 * time.Second)
	if vm.Driver.TotalOps <= before {
		t.Fatal("VM not running after post-copy")
	}
}

func TestPublicAPIG1Migration(t *testing.T) {
	prof, err := javmm.Workload("derby")
	if err != nil {
		t.Fatal(err)
	}
	vm, err := javmm.BootVM(javmm.BootConfig{
		Profile:   prof,
		Assisted:  true,
		Seed:      4,
		Collector: javmm.CollectorG1,
	})
	if err != nil {
		t.Fatal(err)
	}
	vm.Driver.Run(90 * time.Second)
	res, err := javmm.Migrate(vm, javmm.MigrateOptions{Mode: javmm.ModeJAVMM})
	if err != nil {
		t.Fatal(err)
	}
	if res.VerifyErr != nil {
		t.Fatal(res.VerifyErr)
	}
	// The regional collector with growth reporting still skips the bulk
	// of the young generation.
	var skipped uint64
	for _, it := range res.Iterations {
		skipped += it.PagesSkippedBitmap
	}
	if skipped == 0 {
		t.Fatal("G1 migration skipped nothing")
	}
}

func TestPublicAPIReplicate(t *testing.T) {
	vm := bootDerby(t, true)
	rep, err := javmm.Replicate(vm, 3*time.Second, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Epochs) < 2 {
		t.Fatalf("epochs = %d", len(rep.Epochs))
	}
	if rep.Deprotected == 0 {
		t.Fatal("deprotection omitted nothing on derby")
	}
	// The VM can still be migrated afterwards (LKM reset).
	res, err := javmm.Migrate(vm, javmm.MigrateOptions{Mode: javmm.ModeJAVMM})
	if err != nil {
		t.Fatal(err)
	}
	if res.VerifyErr != nil {
		t.Fatal(res.VerifyErr)
	}
}

func TestPublicAPIMultiplex(t *testing.T) {
	vm := bootDerby(t, true)
	cache, err := javmm.AttachCacheApp(vm, 0x300000000, 64<<20, true)
	if err != nil {
		t.Fatal(err)
	}
	both := javmm.Multiplex(vm.Driver, cache)
	start := vm.Clock.Now()
	both.Run(10 * time.Second)
	if got := vm.Clock.Now() - start; got != 10*time.Second {
		t.Fatalf("Multiplex advanced %v, want 10s", got)
	}
	if cache.TotalOps == 0 || vm.Driver.TotalOps == 0 {
		t.Fatal("one executor starved under multiplexing")
	}
	// Each executor got roughly half the CPU.
	res, err := javmm.Migrate(vm, javmm.MigrateOptions{Mode: javmm.ModeJAVMM, Executor: both})
	if err != nil {
		t.Fatal(err)
	}
	if res.VerifyErr != nil {
		t.Fatal(res.VerifyErr)
	}
}

func TestPublicAPIMultiplexValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty Multiplex accepted")
		}
	}()
	javmm.Multiplex()
}

func TestPublicAPICacheVM(t *testing.T) {
	app, g, clock, err := javmm.NewCacheVM(512<<20, 128<<20, true)
	if err != nil {
		t.Fatal(err)
	}
	app.Run(5 * time.Second)
	// Purged pages are legitimately stale at the destination; collect them
	// after the migration's purge by deferring predicate construction.
	purged := map[javmm.PFN]bool{}
	res, err := javmm.MigrateCustom(g, app, javmm.MigrateOptions{
		Mode:      javmm.ModeJAVMM,
		Bandwidth: 50 * 1000 * 1000,
	}, func(p javmm.PFN) bool {
		if len(purged) == 0 {
			app.Proc().AS.Walk(app.PurgedRegion(), func(_ javmm.VA, q javmm.PFN) { purged[q] = true })
		}
		return !purged[p]
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.VerifyErr != nil {
		t.Fatal(res.VerifyErr)
	}
	if res.TotalBytes() >= g.Dom.MemoryBytes() {
		t.Fatal("cold cache tail was not skipped")
	}
	_ = clock
}
