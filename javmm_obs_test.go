package javmm_test

import (
	"bytes"
	"testing"
	"time"

	"javmm"
)

// traceRun boots a fresh derby VM, warms it briefly and migrates it in the
// given mode with a tracer and metrics registry attached.
func traceRun(t *testing.T, mode javmm.Mode, seed int64) (*javmm.Result, *javmm.Tracer, *javmm.Metrics) {
	t.Helper()
	prof, err := javmm.Workload("derby")
	if err != nil {
		t.Fatal(err)
	}
	vm, err := javmm.BootVM(javmm.BootConfig{
		Profile:  prof,
		Assisted: mode == javmm.ModeJAVMM,
		Seed:     seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	vm.Driver.Run(60 * time.Second)
	if vm.Driver.Err != nil {
		t.Fatal(vm.Driver.Err)
	}
	tracer := javmm.NewTracer(vm.Clock)
	metrics := javmm.NewMetrics(vm.Clock)
	res, err := javmm.Migrate(vm, javmm.MigrateOptions{
		Mode:    mode,
		Tracer:  tracer,
		Metrics: metrics,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.VerifyErr != nil {
		t.Fatal(res.VerifyErr)
	}
	return res, tracer, metrics
}

// eventNames collects the names of events matching track/kind/phase.
func eventNames(events []javmm.Event, track, kind, phase string) []string {
	var names []string
	for _, e := range events {
		if e.Track == track && string(e.Kind) == kind && string(e.Phase) == phase {
			names = append(names, e.Name)
		}
	}
	return names
}

// TestTraceLKMStateSequence is the golden LKM trace: an assisted migration
// walks the five-state workflow of the paper's Figure 4 in exactly this
// order, and the trace records every transition.
func TestTraceLKMStateSequence(t *testing.T) {
	_, tracer, _ := traceRun(t, javmm.ModeJAVMM, 7)
	got := eventNames(tracer.Events(), "lkm", "lkm.state", "instant")
	want := []string{
		"MIGRATION_STARTED",
		"ENTERING_LAST_ITER",
		"SUSPENSION_READY",
		"RESUMED",
		"INITIALIZED",
	}
	if len(got) != len(want) {
		t.Fatalf("LKM transitions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("LKM transition %d = %q, want %q (full: %v)", i, got[i], want[i], got)
		}
	}
}

// TestTraceEnforcedGCOnlyAssisted asserts the enforced-GC span appears in
// assisted traces and never in vanilla ones (which also have no LKM
// transitions: the framework is bypassed entirely).
func TestTraceEnforcedGCOnlyAssisted(t *testing.T) {
	_, assisted, _ := traceRun(t, javmm.ModeJAVMM, 7)
	if n := len(eventNames(assisted.Events(), "jvm", "jvm.gc", "begin")); n == 0 {
		t.Fatal("assisted trace has no GC spans at all")
	}
	enforced := 0
	for _, name := range eventNames(assisted.Events(), "jvm", "jvm.gc", "begin") {
		if name == "enforced GC" {
			enforced++
		}
	}
	if enforced != 1 {
		t.Fatalf("assisted trace has %d enforced-GC spans, want exactly 1", enforced)
	}

	_, vanilla, _ := traceRun(t, javmm.ModeXen, 7)
	for _, name := range eventNames(vanilla.Events(), "jvm", "jvm.gc", "begin") {
		if name == "enforced GC" {
			t.Fatal("vanilla trace contains an enforced-GC span")
		}
	}
	if n := len(eventNames(vanilla.Events(), "lkm", "lkm.state", "instant")); n != 0 {
		t.Fatalf("vanilla trace has %d LKM transitions, want 0", n)
	}
}

// TestTraceIterationSpans asserts every report iteration has a span in the
// trace — pre-copy rounds named "iteration N" plus the final "stop-and-copy"
// — and that every opened span was closed.
func TestTraceIterationSpans(t *testing.T) {
	res, tracer, _ := traceRun(t, javmm.ModeJAVMM, 7)
	begins := eventNames(tracer.Events(), "migration", "migration.iteration", "begin")
	ends := eventNames(tracer.Events(), "migration", "migration.iteration", "end")
	if len(begins) != len(res.Iterations) {
		t.Fatalf("trace has %d iteration spans, report has %d iterations", len(begins), len(res.Iterations))
	}
	if len(ends) != len(begins) {
		t.Fatalf("%d iteration begins but %d ends", len(begins), len(ends))
	}
	if last := begins[len(begins)-1]; last != "stop-and-copy" {
		t.Fatalf("last iteration span = %q, want stop-and-copy", last)
	}
	// The whole run is bracketed by a migration.run span.
	if n := len(eventNames(tracer.Events(), "migration", "migration.run", "begin")); n != 1 {
		t.Fatalf("trace has %d migration.run spans, want 1", n)
	}
}

// TestTraceChromeDeterminism runs the same seeded migration twice from two
// fresh boots and requires byte-identical Chrome trace exports — the
// reproducibility property DESIGN.md promises for the whole simulator.
func TestTraceChromeDeterminism(t *testing.T) {
	_, first, _ := traceRun(t, javmm.ModeJAVMM, 42)
	_, second, _ := traceRun(t, javmm.ModeJAVMM, 42)

	var a, b bytes.Buffer
	if err := javmm.WriteTraceChrome(&a, first.Events()); err != nil {
		t.Fatal(err)
	}
	if err := javmm.WriteTraceChrome(&b, second.Events()); err != nil {
		t.Fatal(err)
	}
	if a.Len() == 0 {
		t.Fatal("empty chrome export")
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("chrome exports of identical seeded runs differ")
	}
}

// TestMetricsReconcileWithReport asserts the counters accumulated during a
// migration agree exactly with the report's per-iteration sums — the two
// surfaces observe the same run through the same emit points.
func TestMetricsReconcileWithReport(t *testing.T) {
	res, _, metrics := traceRun(t, javmm.ModeJAVMM, 7)
	snap := metrics.Snapshot()

	var examined, sent, wire, skipDirty, skipBitmap uint64
	for _, it := range res.Iterations {
		examined += it.PagesConsidered
		sent += it.PagesSent
		wire += it.BytesOnWire
		skipDirty += it.PagesSkippedDirty
		skipBitmap += it.PagesSkippedBitmap
	}

	check := func(name string, want int64) {
		t.Helper()
		got, ok := snap.Counter(name)
		if !ok {
			t.Fatalf("counter %s missing", name)
		}
		if got != want {
			t.Fatalf("%s = %d, report says %d", name, got, want)
		}
	}
	check("migration.iterations", int64(len(res.Iterations)))
	check("migration.pages_examined", int64(examined))
	check("migration.pages_sent", int64(sent))
	check("migration.bytes_on_wire", int64(wire))
	check("migration.pages_skipped_dirty", int64(skipDirty))
	check("migration.pages_skipped_bitmap", int64(skipBitmap))
	if sent != res.TotalPagesSent {
		t.Fatalf("iteration sum %d != Report.TotalPagesSent %d", sent, res.TotalPagesSent)
	}
	if wire != res.TotalBytes() {
		t.Fatalf("iteration sum %d != Report.TotalBytes %d", wire, res.TotalBytes())
	}
	check("jvm.gc.enforced", 1)
	check("jvm.gc.enforced_pause_ns", int64(res.EnforcedGC))
	if v, ok := snap.Counter("dest.pages_received"); !ok || uint64(v) != res.TotalPagesSent {
		t.Fatalf("dest.pages_received = %d (present=%v), want %d", v, ok, res.TotalPagesSent)
	}
}

// TestTraceChromeDeterminismLazyModes extends the golden-trace property to
// the post-copy and hybrid engines: their traces interleave demand faults,
// prefetch chunks and the lazy-phase span, and all of it must still be
// byte-identical across same-seed runs.
func TestTraceChromeDeterminismLazyModes(t *testing.T) {
	for _, mode := range []javmm.Mode{javmm.ModePostCopy, javmm.ModeHybrid} {
		t.Run(mode.String(), func(t *testing.T) {
			_, first, _ := traceRun(t, mode, 42)
			_, second, _ := traceRun(t, mode, 42)

			var a, b bytes.Buffer
			if err := javmm.WriteTraceChrome(&a, first.Events()); err != nil {
				t.Fatal(err)
			}
			if err := javmm.WriteTraceChrome(&b, second.Events()); err != nil {
				t.Fatal(err)
			}
			if a.Len() == 0 {
				t.Fatal("empty chrome export")
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Fatalf("%s: chrome exports of identical seeded runs differ", mode)
			}
		})
	}
}

// attributedRun is traceRun with a provenance ledger attached, for the
// reconciliation tests.
func attributedRun(t *testing.T, mode javmm.Mode, seed int64) (*javmm.Result, *javmm.Ledger) {
	t.Helper()
	prof, err := javmm.Workload("derby")
	if err != nil {
		t.Fatal(err)
	}
	vm, err := javmm.BootVM(javmm.BootConfig{
		Profile:  prof,
		Assisted: mode == javmm.ModeJAVMM,
		Seed:     seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	vm.Driver.Run(60 * time.Second)
	if vm.Driver.Err != nil {
		t.Fatal(vm.Driver.Err)
	}
	led := javmm.NewLedger()
	res, err := javmm.Migrate(vm, javmm.MigrateOptions{Mode: mode, Ledger: led})
	if err != nil {
		t.Fatal(err)
	}
	if res.VerifyErr != nil {
		t.Fatal(res.VerifyErr)
	}
	return res, led
}

// TestAttributionReconcilesAllModes is the acceptance criterion of the
// observability layer: in every migration mode, the ledger's traffic
// buckets sum to the report's total byte-for-byte, and the attribution's
// downtime components sum to the reported workload downtime tick-for-tick.
func TestAttributionReconcilesAllModes(t *testing.T) {
	for _, mode := range []javmm.Mode{
		javmm.ModeXen, javmm.ModeJAVMM, javmm.ModePostCopy, javmm.ModeHybrid,
	} {
		t.Run(mode.String(), func(t *testing.T) {
			res, led := attributedRun(t, mode, 11)

			// Attribute itself refuses to return un-reconciled accounting,
			// but assert the two invariants explicitly anyway.
			a, err := javmm.Attribute(res, led)
			if err != nil {
				t.Fatal(err)
			}

			sum := led.Summary()
			var reasonBytes, reasonSends uint64
			for _, r := range javmm.SendReasons() {
				reasonBytes += sum.SendsByReason[r].Bytes
				reasonSends += sum.SendsByReason[r].Count
			}
			if reasonBytes != res.TotalBytes() {
				t.Fatalf("ledger reason bytes %d != Report.TotalBytes %d", reasonBytes, res.TotalBytes())
			}
			if reasonSends != res.TotalPagesSent {
				t.Fatalf("ledger reason sends %d != Report.TotalPagesSent %d", reasonSends, res.TotalPagesSent)
			}

			var downtime time.Duration
			for _, c := range a.Components() {
				downtime += c.Dur
			}
			if downtime != res.WorkloadDowntime {
				t.Fatalf("component sum %v != reported workload downtime %v", downtime, res.WorkloadDowntime)
			}
			if a.StopAndCopy+a.Resumption != res.VMDowntime {
				t.Fatalf("stop-and-copy %v + resumption %v != VM downtime %v",
					a.StopAndCopy, a.Resumption, res.VMDowntime)
			}
			if mode == javmm.ModeJAVMM {
				if a.EnforcedGC != res.EnforcedGC || a.FinalUpdate != res.FinalUpdate {
					t.Fatalf("JAVMM components (%v, %v) != report (%v, %v)",
						a.EnforcedGC, a.FinalUpdate, res.EnforcedGC, res.FinalUpdate)
				}
			} else if a.EnforcedGC != 0 || a.FinalUpdate != 0 {
				t.Fatalf("%s charged JAVMM-only components: gc=%v update=%v", mode, a.EnforcedGC, a.FinalUpdate)
			}
		})
	}
}

// TestPrometheusGoldenAcrossRuns is the exposition-format stability gate:
// two fully independent migrations at the same seed must render
// byte-identical Prometheus text. This is what lets the trajectory tooling
// (and any scrape-diffing CI job) treat the exposition output as a golden
// artifact.
func TestPrometheusGoldenAcrossRuns(t *testing.T) {
	render := func() []byte {
		_, _, metrics := traceRun(t, javmm.ModeJAVMM, 7)
		var buf bytes.Buffer
		if err := javmm.WritePrometheus(&buf, metrics.Snapshot()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	first := render()
	second := render()
	if len(first) == 0 {
		t.Fatal("empty prometheus exposition")
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("two independent runs rendered different exposition text:\nrun1:\n%s\nrun2:\n%s", first, second)
	}
}
