// Multiapp: several applications assisting one migration.
//
// The framework's LKM coordinates concurrent skip-over areas from multiple
// applications (§6, "Support large and multiple applications"): it multicasts
// queries over netlink, merges every app's transfer-bitmap updates, and waits
// for ALL apps with skip-over areas to become suspension-ready before asking
// the daemon to pause the VM.
//
// This example runs a Java workload (serial) and a memcached-like cache side
// by side in one 2 GiB VM. Under JAVMM-mode migration the JVM skips its young
// generation while the cache app skips its cold tail — both coordinated by
// the same LKM.
//
//	go run ./examples/multiapp
package main

import (
	"fmt"
	"log"
	"time"

	"javmm"
)

func main() {
	serial, err := javmm.Workload("serial")
	if err != nil {
		log.Fatal(err)
	}
	// Keep the combined footprint inside 2 GiB: a 512 MiB young cap for the
	// JVM and a 512 MiB cache.
	serial.MaxYoungBytes = 512 << 20

	for _, mode := range []javmm.Mode{javmm.ModeXen, javmm.ModeJAVMM} {
		assisted := mode == javmm.ModeJAVMM
		vm, err := javmm.BootVM(javmm.BootConfig{
			Profile:  serial,
			Assisted: assisted,
			Seed:     3,
		})
		if err != nil {
			log.Fatal(err)
		}
		cache, err := javmm.AttachCacheApp(vm, 0x200000000, 512<<20, assisted)
		if err != nil {
			log.Fatal(err)
		}

		// Both applications share the guest CPUs, round-robin.
		both := javmm.Multiplex(vm.Driver, cache)
		both.Run(180 * time.Second)
		if vm.Driver.Err != nil {
			log.Fatal(vm.Driver.Err)
		}

		res, err := javmm.Migrate(vm, javmm.MigrateOptions{
			Mode:     mode,
			Executor: both,
		})
		if err != nil {
			log.Fatal(err)
		}
		// The cache's purged cold tail keeps its transfer bits cleared, so
		// verification already treats it as skipped-by-consent.
		if res.VerifyErr != nil {
			log.Fatalf("%s: %v", mode, res.VerifyErr)
		}

		fmt.Printf("%-6s  time %6.2fs  traffic %5.2f GB  downtime %5.0f ms  young skipped + cold cache skipped = %s\n",
			mode, res.TotalTime.Seconds(), float64(res.TotalBytes())/1e9,
			res.WorkloadDowntime.Seconds()*1000,
			skippedVolume(res))
	}
}

// skippedVolume sums the bitmap-skipped page volume across iterations.
func skippedVolume(res *javmm.Result) string {
	var pages uint64
	for _, it := range res.Iterations {
		pages += it.PagesSkippedBitmap
	}
	return fmt.Sprintf("%.2f GB", float64(pages*4096)/1e9)
}
