// Multiapp: several applications assisting migrations that run concurrently.
//
// The framework's LKM coordinates concurrent skip-over areas from multiple
// applications (§6, "Support large and multiple applications"): it multicasts
// queries over netlink, merges every app's transfer-bitmap updates, and waits
// for ALL apps with skip-over areas to become suspension-ready before asking
// the daemon to pause the VM.
//
// This example boots TWO such VMs — each running a Java workload (serial)
// and a memcached-like cache side by side in 2 GiB — and migrates both at
// the same time over one shared gigabit backbone (MigrateMany): the engines
// split the link under fair-share arbitration while, inside each guest, the
// JVM skips its young generation and the cache app skips its cold tail.
// Everything interleaves on one deterministic clock, so the run is exactly
// reproducible.
//
//	go run ./examples/multiapp
package main

import (
	"fmt"
	"log"
	"time"

	"javmm"
)

func main() {
	serial, err := javmm.Workload("serial")
	if err != nil {
		log.Fatal(err)
	}
	// Keep the combined footprint inside 2 GiB: a 512 MiB young cap for the
	// JVM and a 512 MiB cache.
	serial.MaxYoungBytes = 512 << 20

	for _, mode := range []javmm.Mode{javmm.ModeXen, javmm.ModeJAVMM} {
		assisted := mode == javmm.ModeJAVMM
		res, err := javmm.MigrateMany(javmm.FleetOptions{
			Mode:     mode,
			Profiles: []javmm.Profile{serial, serial},
			Seed:     3,
			Warmup:   180 * time.Second,
			Stagger:  500 * time.Millisecond,
			// Each VM gets a cache app beside the JVM; the returned
			// Multiplex round-robins the guest CPUs between them and
			// replaces the bare driver in the VM's guest process.
			Attach: func(i int, vm *javmm.VM) (javmm.GuestExecutor, error) {
				cache, err := javmm.AttachCacheApp(vm, 0x200000000, 512<<20, assisted)
				if err != nil {
					return nil, err
				}
				return javmm.Multiplex(vm.Driver, cache), nil
			},
		})
		if err != nil {
			log.Fatal(err)
		}

		for i := range res.VMs {
			vm := &res.VMs[i]
			if vm.Err != nil {
				log.Fatalf("%s %s: %v", mode, vm.Name, vm.Err)
			}
			// The cache's purged cold tail keeps its transfer bits cleared,
			// so verification already treats it as skipped-by-consent.
			if vm.VerifyErr != nil {
				log.Fatalf("%s %s: %v", mode, vm.Name, vm.VerifyErr)
			}
			fmt.Printf("%-6s %-10s  time %6.2fs  traffic %5.2f GB  downtime %5.0f ms  young + cold cache skipped = %s\n",
				mode, vm.Name, vm.Report.TotalTime.Seconds(),
				float64(vm.Report.TotalBytes())/1e9,
				vm.WorkloadDowntime.Seconds()*1000,
				skippedVolume(vm))
		}
		var backbone string
		for _, lu := range res.Fabric.Links {
			backbone = fmt.Sprintf("%.2f GB in %d transfers, peak %d concurrent",
				float64(lu.BytesSent)/1e9, lu.Transfers, lu.MaxConcurrent)
		}
		fmt.Printf("%-6s fleet makespan %6.2fs, shared backbone carried %s\n\n",
			mode, res.MakeSpan.Seconds(), backbone)
	}
}

// skippedVolume sums the bitmap-skipped page volume across iterations.
func skippedVolume(vm *javmm.FleetVMResult) string {
	var pages uint64
	for _, it := range vm.Report.Iterations {
		pages += it.PagesSkippedBitmap
	}
	return fmt.Sprintf("%.2f GB", float64(pages*4096)/1e9)
}
