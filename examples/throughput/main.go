// Throughput: observe what migration does to a running application.
//
// Reproduces the paper's Figure 11 experiment as a terminal plot: a VM
// running the crypto workload is migrated halfway through its run, under
// vanilla Xen and under JAVMM, while an external analyzer samples completed
// operations once per second (with a clock that keeps ticking while the VM
// is suspended — so downtime shows up as zero-op seconds).
//
//	go run ./examples/throughput
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"javmm"
)

const (
	warmup   = 300 * time.Second
	cooldown = 60 * time.Second
	window   = 30 // seconds shown around migration start
)

func main() {
	crypto, err := javmm.Workload("crypto")
	if err != nil {
		log.Fatal(err)
	}

	timelines := map[string][]javmm.Sample{}
	for _, mode := range []javmm.Mode{javmm.ModeXen, javmm.ModeJAVMM} {
		vm, err := javmm.BootVM(javmm.BootConfig{
			Profile:  crypto,
			Assisted: mode == javmm.ModeJAVMM,
			Seed:     7,
		})
		if err != nil {
			log.Fatal(err)
		}
		vm.Driver.Run(warmup)

		res, err := javmm.Migrate(vm, javmm.MigrateOptions{Mode: mode})
		if err != nil {
			log.Fatal(err)
		}
		if res.VerifyErr != nil {
			log.Fatalf("%s: %v", mode, res.VerifyErr)
		}
		fmt.Printf("%-6s migrated in %6.2fs, workload downtime %5.0f ms\n",
			mode, res.TotalTime.Seconds(), res.WorkloadDowntime.Seconds()*1000)

		vm.Driver.Run(cooldown)
		timelines[mode.String()] = vm.Driver.Samples()
	}

	start := int(warmup / time.Second)
	fmt.Printf("\nops/sec around migration (starts at t=%ds); each bar is one second\n\n", start)
	for _, mode := range []string{"xen", "javmm"} {
		fmt.Printf("%s:\n", mode)
		plot(timelines[mode], start-5, start+window)
		fmt.Println()
	}
	fmt.Println("the gap in the xen timeline is the long stop-and-copy; JAVMM's dip is")
	fmt.Println("the enforced GC plus a short stop-and-copy (paper Figure 11)")
}

// plot renders one sample series as horizontal bars.
func plot(samples []javmm.Sample, from, to int) {
	bySec := map[int]float64{}
	var max float64
	for _, s := range samples {
		bySec[s.Second] = s.Ops
		if s.Ops > max {
			max = s.Ops
		}
	}
	if max == 0 {
		max = 1
	}
	for sec := from; sec <= to; sec++ {
		ops := bySec[sec]
		bar := strings.Repeat("#", int(ops/max*50))
		fmt.Printf("  t=%4ds %6.2f %s\n", sec, ops, bar)
	}
}
