// Quickstart: migrate a Java VM with and without application assistance.
//
// This is the library's two-minute tour: boot a 2 GiB VM running the derby
// workload (a category-1, allocation-heavy database workload), warm it up,
// and live-migrate it over a gigabit link — first with vanilla Xen pre-copy,
// then with JAVMM skipping young-generation garbage. Everything runs on a
// virtual clock, so the "minutes" of migration complete in well under a
// second of wall time.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"javmm"
)

func main() {
	derby, err := javmm.Workload("derby")
	if err != nil {
		log.Fatal(err)
	}

	for _, mode := range []javmm.Mode{javmm.ModeXen, javmm.ModeJAVMM} {
		// Each run gets a fresh VM so the two migrations are independent.
		vm, err := javmm.BootVM(javmm.BootConfig{
			Profile:  derby,
			Assisted: mode == javmm.ModeJAVMM, // load the JAVMM TI agent
			Seed:     1,
		})
		if err != nil {
			log.Fatal(err)
		}

		// Let the workload reach steady state: the young generation grows
		// to its 1 GiB maximum and is continuously filled with garbage.
		vm.Driver.Run(300 * time.Second)

		res, err := javmm.Migrate(vm, javmm.MigrateOptions{
			Mode:      mode,
			Bandwidth: javmm.GigabitEthernet,
		})
		if err != nil {
			log.Fatal(err)
		}
		if res.VerifyErr != nil {
			log.Fatalf("%s: destination diverged: %v", mode, res.VerifyErr)
		}

		fmt.Printf("%-6s  time %7.2fs   traffic %5.2f GB   downtime %6.0f ms   iterations %d\n",
			mode,
			res.TotalTime.Seconds(),
			float64(res.TotalBytes())/1e9,
			res.WorkloadDowntime.Seconds()*1000,
			len(res.Iterations))
	}

	fmt.Println("\nJAVMM skips the transfer of young-generation garbage and ships only")
	fmt.Println("the survivors of one enforced minor GC — hence the order-of-magnitude")
	fmt.Println("reductions the paper reports for allocation-heavy Java workloads.")
}
