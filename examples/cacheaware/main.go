// Cacheaware: application-assisted migration beyond Java.
//
// The paper's framework is generic: any application that can declare parts
// of its memory as "not needed at the destination" can assist migration
// (§6). This example runs a memcached-like cache server with a 1 GiB cache
// in a 2 GiB VM. During assisted migration the app reports the LRU-cold
// three quarters of its cache as skip-over memory, purges those entries
// before suspension, and rebuilds them from misses after resumption —
// trading a temporary hit-ratio dip for a much cheaper migration.
//
//	go run ./examples/cacheaware
package main

import (
	"fmt"
	"log"
	"time"

	"javmm"
)

func main() {
	for _, mode := range []javmm.Mode{javmm.ModeXen, javmm.ModeJAVMM} {
		app, guest, clock, err := javmm.NewCacheVM(2<<30, 1<<30, mode == javmm.ModeJAVMM)
		if err != nil {
			log.Fatal(err)
		}
		app.Run(60 * time.Second) // fill and churn the cache

		// Purged pages legitimately hold stale bytes at the destination;
		// exclude them from verification exactly as the §6 contract allows.
		purged := map[javmm.PFN]bool{}
		res, err := javmm.MigrateCustom(guest, app, javmm.MigrateOptions{Mode: mode},
			func(p javmm.PFN) bool {
				if len(purged) == 0 && !app.PurgedRegion().Empty() {
					app.Proc().AS.Walk(app.PurgedRegion(), func(_ javmm.VA, q javmm.PFN) {
						purged[q] = true
					})
				}
				return !purged[p]
			})
		if err != nil {
			log.Fatal(err)
		}
		if res.VerifyErr != nil {
			log.Fatalf("%s: %v", mode, res.VerifyErr)
		}

		fmt.Printf("%-6s  time %6.2fs  traffic %5.2f GB  downtime %4.0f ms  hit ratio after resume %3.0f%%\n",
			mode, res.TotalTime.Seconds(), float64(res.TotalBytes())/1e9,
			res.VMDowntime.Seconds()*1000, app.HitRatio()*100)

		if mode == javmm.ModeJAVMM {
			// Watch the cache refill: misses rebuild the cold tail.
			resumed := clock.Now()
			for app.HitRatio() < 1.0 {
				app.Run(5 * time.Second)
				fmt.Printf("        +%3.0fs  hit ratio %5.1f%%\n",
					(clock.Now() - resumed).Seconds(), app.HitRatio()*100)
			}
			fmt.Printf("        cache fully rebuilt %.0fs after resumption\n",
				(clock.Now() - resumed).Seconds())
		}
	}
}
