// Replication: the framework beyond migration.
//
// The paper's closest relative is RemusDB (§2), which continuously
// checkpoints a VM to a backup host for high availability and explored
// omitting selected memory from checkpoints ("memory deprotection") — but
// left open which data structures could safely be omitted. JAVMM's answer:
// the young generation. This example protects a derby VM with Remus-style
// 100 ms checkpoints, with and without deprotecting the young generation
// through the same LKM transfer bitmap that guides migration.
//
//	go run ./examples/replication
package main

import (
	"fmt"
	"log"
	"time"

	"javmm"
)

func main() {
	derby, err := javmm.Workload("derby")
	if err != nil {
		log.Fatal(err)
	}

	for _, deprotect := range []bool{false, true} {
		vm, err := javmm.BootVM(javmm.BootConfig{
			Profile:  derby,
			Assisted: true, // the agent supplies the skip-over areas
			Seed:     2,
		})
		if err != nil {
			log.Fatal(err)
		}
		vm.Driver.Run(120 * time.Second) // steady state

		rep, err := javmm.Replicate(vm, 10*time.Second, deprotect, javmm.GigabitEthernet)
		if err != nil {
			log.Fatal(err)
		}

		name := "remus           "
		if deprotect {
			name = "remus+deprotect "
		}
		fmt.Printf("%s  checkpoint stream %5.2f GB in 10s   epochs %3d   avg pause %6.1f ms   pages omitted %d\n",
			name,
			float64(rep.TotalBytes)/1e9,
			len(rep.Epochs),
			float64(rep.AvgPause().Microseconds())/1000,
			rep.Deprotected)
	}

	fmt.Println("\nderby rewrites its 1 GiB young generation every few seconds; replicating")
	fmt.Println("that garbage dominates the checkpoint stream. Deprotection omits it —")
	fmt.Println("after failover the JVM sees an empty young generation, exactly as it")
	fmt.Println("would after a collection (the RemusDB open question, answered).")
}
