package javmm_test

import (
	"fmt"
	"time"

	"javmm"
)

// Example shows the canonical usage: boot a workload VM, warm it up, migrate
// it with application assistance, and inspect the result. Everything runs on
// a virtual clock, so the output is exactly reproducible.
func Example() {
	prof, err := javmm.Workload("derby")
	if err != nil {
		panic(err)
	}
	vm, err := javmm.BootVM(javmm.BootConfig{Profile: prof, Assisted: true, Seed: 1})
	if err != nil {
		panic(err)
	}
	vm.Driver.Run(300 * time.Second)

	res, err := javmm.Migrate(vm, javmm.MigrateOptions{Mode: javmm.ModeJAVMM})
	if err != nil {
		panic(err)
	}
	fmt.Printf("verified: %v\n", res.VerifyErr == nil)
	fmt.Printf("young generation skipped, survivors shipped: last iteration %.0f MB\n",
		float64(res.LastIterBytes)/1e6)
	// Output:
	// verified: true
	// young generation skipped, survivors shipped: last iteration 17 MB
}

// ExampleMigrate_comparison migrates the same workload under both modes, the
// paper's core experiment.
func ExampleMigrate_comparison() {
	prof, _ := javmm.Workload("xml") // largest young generation: best case
	var times [2]time.Duration
	for i, mode := range []javmm.Mode{javmm.ModeXen, javmm.ModeJAVMM} {
		vm, err := javmm.BootVM(javmm.BootConfig{
			Profile:  prof,
			Assisted: mode == javmm.ModeJAVMM,
			Seed:     1,
		})
		if err != nil {
			panic(err)
		}
		vm.Driver.Run(300 * time.Second)
		res, err := javmm.Migrate(vm, javmm.MigrateOptions{Mode: mode})
		if err != nil {
			panic(err)
		}
		times[i] = res.TotalTime
	}
	fmt.Printf("JAVMM reduces xml migration time by %.0f%%\n",
		(1-times[1].Seconds()/times[0].Seconds())*100)
	// Output:
	// JAVMM reduces xml migration time by 91%
}

// ExampleWorkloads lists the SPECjvm2008-like catalog.
func ExampleWorkloads() {
	for _, p := range javmm.Workloads()[:3] {
		fmt.Printf("%s (category %d)\n", p.Name, p.Category)
	}
	// Output:
	// derby (category 1)
	// compiler (category 1)
	// xml (category 1)
}
