// Package javmm is a faithful, laptop-scale reproduction of
// "Application-Assisted Live Migration of Virtual Machines with Java
// Applications" (Hou, Shin, Sung — EuroSys 2015).
//
// It provides, as a library:
//
//   - a deterministic simulation of Xen pre-copy live migration (iterative
//     dirty-page transfer, log-dirty rounds, stop conditions, stop-and-copy),
//   - the paper's generic application-assisted migration framework — an
//     in-guest LKM bridging the migration daemon and applications over
//     netlink/event channels, a transfer bitmap, a PFN cache, and the
//     five-state migration workflow,
//   - JAVMM itself: a HotSpot-like generational-heap JVM simulator whose TI
//     agent skips migrating young-generation garbage and ships only the
//     survivors of an enforced pre-suspension minor GC,
//   - nine SPECjvm2008-like workloads calibrated to the paper's heap
//     profiles, and an experiment harness regenerating every table and
//     figure of the evaluation.
//
// The quickest path from zero to a migrated VM:
//
//	prof, _ := javmm.Workload("derby")
//	vm, _ := javmm.BootVM(javmm.BootConfig{Profile: prof, Assisted: true})
//	vm.Driver.Run(300 * time.Second) // warm up
//	res, _ := javmm.Migrate(vm, javmm.MigrateOptions{Mode: javmm.ModeJAVMM})
//	fmt.Println(res.TotalTime, res.TotalBytes(), res.WorkloadDowntime)
//
// Everything runs against a virtual clock: a 60-second migration completes
// in well under a second of wall time and is exactly reproducible.
package javmm

import (
	"fmt"
	"io"
	"time"

	"javmm/internal/cacheapp"
	"javmm/internal/faults"
	"javmm/internal/fleet"
	"javmm/internal/guestos"
	"javmm/internal/hypervisor"
	"javmm/internal/jvm"
	"javmm/internal/mem"
	"javmm/internal/migration"
	"javmm/internal/netsim"
	"javmm/internal/obs"
	"javmm/internal/obs/attrib"
	"javmm/internal/obs/fleetobs"
	"javmm/internal/obs/ledger"
	"javmm/internal/obs/perf"
	"javmm/internal/obs/sla"
	"javmm/internal/replication"
	"javmm/internal/simclock"
	"javmm/internal/workload"
)

// Re-exported core types. The implementation lives under internal/; these
// aliases are the supported public surface.
type (
	// VM is a fully assembled guest: domain, guest OS with the framework
	// LKM, JVM, optional JAVMM agent and workload driver.
	VM = workload.VM
	// BootConfig parameterizes VM assembly.
	BootConfig = workload.BootConfig
	// Profile describes a workload's heap behaviour and execution rates.
	Profile = workload.Profile
	// Sample is one per-second throughput observation.
	Sample = workload.Sample
	// Report is the migration engine's outcome.
	Report = migration.Report
	// IterationStats describes one pre-copy iteration.
	IterationStats = migration.IterationStats
	// Mode selects the migration algorithm.
	Mode = migration.Mode
	// EngineConfig tunes the pre-copy engine.
	EngineConfig = migration.Config
	// MemRange is a half-open guest virtual address range.
	MemRange = mem.VARange
	// Guest is the in-guest operating system state (processes, LKM).
	Guest = guestos.Guest
	// Process is a guest user process with a walkable address space.
	Process = guestos.Process
	// JVM is the simulated HotSpot instance inside a VM.
	JVM = jvm.JVM
	// CacheApp is the memcached-like application of the §6 extension.
	CacheApp = cacheapp.App
	// CacheAppConfig parameterizes CacheApp.
	CacheAppConfig = cacheapp.Config
	// Clock is the deterministic virtual clock all components share.
	Clock = simclock.Clock
	// GuestExecutor runs guest activity for spans of virtual time.
	GuestExecutor = migration.GuestExecutor
	// Tracer records structured events against the virtual clock; attach
	// one via MigrateOptions.Tracer and export with WriteJSONL or
	// WriteChromeTrace.
	Tracer = obs.Tracer
	// Event is one recorded trace event (virtual timestamp, track, kind,
	// name, phase, attributes).
	Event = obs.Event
	// Metrics is a registry of counters, gauges and time-weighted
	// histograms keyed to the virtual clock.
	Metrics = obs.Metrics
	// MetricsSnapshot is a point-in-time, name-sorted view of a Metrics
	// registry.
	MetricsSnapshot = obs.MetricsSnapshot
	// Ledger records per-page provenance for one migration: every send
	// tagged with iteration and reason, every skip with its cause. Attach
	// one via MigrateOptions.Ledger; its totals reconcile exactly with the
	// run's Report.
	Ledger = ledger.Ledger
	// LedgerSummary aggregates a ledger: totals, wasted and saved bytes,
	// per-reason buckets and page-population counts.
	LedgerSummary = ledger.Summary
	// PageStat is one page's provenance record (see Ledger.TopPages).
	PageStat = ledger.PageStat
	// SendReason classifies why one page send happened (first copy,
	// re-dirtied, final iteration, demand fault, hybrid refetch).
	SendReason = ledger.SendReason
	// SkipReason classifies why a considered page was left behind
	// (bitmap skip, free skip, dirty deferral).
	SkipReason = ledger.SkipReason
	// Attribution is the reconciled accounting of one run: the downtime
	// breakdown, the per-reason traffic split and the per-iteration series.
	Attribution = attrib.Attribution
	// FaultInjector evaluates a FaultPlan against the virtual clock; attach
	// one via MigrateOptions.Faults to exercise the recovery machinery. A
	// nil injector is a valid no-op.
	FaultInjector = faults.Injector
	// FaultPlan is an ordered set of fault rules.
	FaultPlan = faults.Plan
	// FaultRule is one declarative fault (site, virtual time, occurrence).
	FaultRule = faults.Rule
	// FaultSite names one injection point in the migration pipeline.
	FaultSite = faults.Site
	// FaultEvent is one audit-log entry: a fault that actually fired.
	FaultEvent = faults.Event
	// RecoveryConfig tunes the engine's retry/backoff/degrade policy
	// (EngineConfig.Recovery).
	RecoveryConfig = migration.Recovery
	// RecoveryStats is the Report's account of the robustness layer's work
	// (Report.Recovery, nil on fault-free runs).
	RecoveryStats = migration.RecoveryStats
	// RetryRecord is one retried stage attempt.
	RetryRecord = migration.RetryRecord
	// Degradation records a mid-flight downgrade of an assisted run to
	// vanilla pre-copy semantics (paper §4.2).
	Degradation = migration.Degradation
	// IntegrityConfig tunes the end-to-end page-digest verification plane
	// (EngineConfig.Integrity).
	IntegrityConfig = migration.Integrity
	// IntegrityStats is the Report's account of the digest audit
	// (Report.Integrity; nil when the sink carries no digests or the plane
	// is disabled).
	IntegrityStats = migration.IntegrityStats
	// ResumeToken is the credential an aborted run mints
	// (Report.Recovery.Token, with EngineConfig.Recovery.EnableResume set);
	// feed it to Resume to continue the migration without paying the full
	// first copy again.
	ResumeToken = migration.ResumeToken
	// ResumeStats is a resumed run's account of how much of its token was
	// honoured (Report.Resume).
	ResumeStats = migration.ResumeStats
	// Scheduler is the deterministic cooperative process scheduler: N
	// processes (guests, migration engines) interleave on one virtual clock
	// with totally ordered wakeups, so concurrent runs are reproducible.
	Scheduler = simclock.Scheduler
	// Fabric is the shared network substrate for concurrent migrations:
	// hosts, NICs and links whose bandwidth is arbitrated across tenants
	// under progressive fair share.
	Fabric = netsim.Fabric
	// FabricReport is the fabric's merged per-link accounting.
	FabricReport = netsim.FabricReport
	// LinkUsage is one shared link's utilization account.
	LinkUsage = netsim.LinkUsage
	// FleetOptions parameterizes MigrateMany.
	FleetOptions = fleet.Options
	// FleetResult is a whole fleet run: per-VM outcomes plus the fabric
	// report and the fleet-level makespan.
	FleetResult = fleet.Result
	// FleetVMResult is one VM's outcome within a fleet run.
	FleetVMResult = fleet.VMResult
	// FlowUsage is one flow's fair-share accounting (queueing and stall
	// time) in a FabricReport.
	FlowUsage = netsim.FlowUsage
	// Progress is one point of the live migration progress stream: phase,
	// iteration, cumulative pages/bytes, outstanding work, observed rates
	// and the clamped ETA. Receive it via MigrateOptions' EngineConfig
	// OnProgress or FleetOptions.OnProgress.
	Progress = migration.Progress
	// ProgressPhase names a lifecycle phase in the progress stream.
	ProgressPhase = migration.ProgressPhase
	// FleetCollector is the fleet observability plane MigrateMany builds
	// with FleetOptions.Collect: per-VM trace lanes merged into one Chrome
	// trace, labeled metrics, captured progress streams, the fabric lane.
	FleetCollector = fleetobs.Collector
	// VMPlane is one VM's observability surfaces inside a FleetCollector.
	VMPlane = fleetobs.VMPlane
	// FleetSnapshot is the fleet metrics interchange form (per-VM registries
	// plus the fleet-scoped registry) javmm-analyze's fleet mode ingests.
	FleetSnapshot = fleetobs.Snapshot
	// TraceLane is one process row of a merged multi-plane Chrome trace.
	TraceLane = obs.TraceLane
	// Label is one Prometheus label on a labeled snapshot.
	Label = obs.Label
	// LabeledSnapshot pairs a metrics snapshot with Prometheus labels for
	// WritePrometheusLabeled.
	LabeledSnapshot = obs.LabeledSnapshot
	// SLAModel is the pricing policy for SLA cost accounting: a penalty per
	// second of application-visible downtime plus a penalty per operation
	// lost to the migration's throughput dip.
	SLAModel = sla.Model
	// SLACost is one migration's priced account, reconciled tick-for-tick
	// against the run's attribution.
	SLACost = sla.Cost
	// FleetSLACost aggregates per-VM SLA costs over a fleet run.
	FleetSLACost = sla.FleetCost
	// Cluster is the declared topology the orchestrator plans over: hosts
	// with capacity grouped into racks, shared links, VM placements.
	Cluster = fleet.Cluster
	// HostSpec is one physical host in a Cluster.
	HostSpec = fleet.HostSpec
	// ClusterLinkSpec is one shared fabric link in a Cluster.
	ClusterLinkSpec = fleet.LinkSpec
	// VMSpec is one VM placement in a Cluster, with its workload and
	// (optionally) the activity cycle the cycle-aware scheduler exploits.
	VMSpec = fleet.VMSpec
	// CycleSpec declares a workload's periodic quiet window.
	CycleSpec = workload.CycleSpec
	// MigrationPlan is a compiled-on-demand batch plan ("evacuate host H",
	// "drain rack R", "migrate vm V to H", "rebalance to N%").
	MigrationPlan = fleet.Plan
	// PlanMove is one VM relocation a plan compiles to.
	PlanMove = fleet.Move
	// OrchestratorOptions parameterizes Orchestrate.
	OrchestratorOptions = fleet.OrchestratorOptions
	// Ordering selects the orchestrator's launch policy.
	Ordering = fleet.Ordering
	// AdmissionPolicy bounds concurrent migrations per link and per
	// destination host.
	AdmissionPolicy = fleet.AdmissionPolicy
	// AdmissionError is the typed refusal for plans that cannot be placed
	// (destination capacity exhausted) — check with errors.As.
	AdmissionError = fleet.AdmissionError
	// PlanMoveResult is one executed move: the VM's migration outcome plus
	// the orchestrator's scheduling record.
	PlanMoveResult = fleet.MoveResult
	// PlanResult is a whole executed batch plan.
	PlanResult = fleet.PlanResult
	// RetryPolicy is the self-healing layer's budget: per-move retries with
	// seeded backoff, move/plan deadlines, destination re-selection and a
	// per-host circuit breaker (OrchestratorOptions.Retry; DESIGN.md §18).
	RetryPolicy = fleet.RetryPolicy
	// BreakerPolicy is the per-host circuit breaker inside a RetryPolicy:
	// K failures inside a window open the host; it rejoins re-selection
	// after the cooldown.
	BreakerPolicy = fleet.BreakerPolicy
	// HostOpenError is the typed refusal when every otherwise-admissible
	// destination is breaker-open — check with errors.As; Until says when
	// the earliest breaker closes.
	HostOpenError = fleet.HostOpenError
	// MoveOutcome classifies how a healed move ended (completed, retried,
	// relocated, failed).
	MoveOutcome = fleet.MoveOutcome
	// MoveAttempt is one launch of a healed move: destination, window,
	// failure classification and token reuse.
	MoveAttempt = fleet.Attempt
	// HealingSummary is PlanResult.Healing()'s per-move outcome table with
	// retry/relocation/backoff/token-savings totals, reconciled against the
	// ledger's resume-refetch tags (javmm-analyze -heal ingests its JSON).
	HealingSummary = fleet.HealingSummary
)

// Progress phases, in the order a run moves through them.
const (
	ProgressStart       = migration.ProgressStart
	ProgressPreCopy     = migration.ProgressPreCopy
	ProgressPrepare     = migration.ProgressPrepare
	ProgressStopAndCopy = migration.ProgressStopAndCopy
	ProgressPostCopy    = migration.ProgressPostCopy
	ProgressDone        = migration.ProgressDone
	ProgressAborted     = migration.ProgressAborted
)

// MaxETA is the progress stream's ETA clamp: non-converging estimates (dirty
// rate at or above transfer rate) and converging-but-absurd ones are pinned
// here instead of going negative or overflowing.
const MaxETA = migration.MaxETA

// EstimateETA estimates remaining transfer time from the observed rates; see
// migration.EstimateETA for the clamping contract.
func EstimateETA(bytesRemaining uint64, transferRate, dirtyByteRate float64) (time.Duration, bool) {
	return migration.EstimateETA(bytesRemaining, transferRate, dirtyByteRate)
}

// DefaultSLA is the reference pricing policy experiments use, so SLA-cost
// columns are comparable across runs.
func DefaultSLA() SLAModel { return sla.Default() }

// Fault-injection sites, re-exported from the faults package.
const (
	// FaultLinkPartition takes the migration link down for a window.
	FaultLinkPartition = faults.SiteLinkPartition
	// FaultLinkBandwidth collapses link bandwidth for a window.
	FaultLinkBandwidth = faults.SiteLinkBandwidth
	// FaultNetlinkLoss drops a netlink message.
	FaultNetlinkLoss = faults.SiteNetlinkLoss
	// FaultNetlinkDelay delivers a netlink message late.
	FaultNetlinkDelay = faults.SiteNetlinkDelay
	// FaultLKMHandshake swallows the LKM's suspension-ready notification;
	// the run degrades to vanilla pre-copy.
	FaultLKMHandshake = faults.SiteLKMHandshake
	// FaultDestReceive fails one page receive transiently.
	FaultDestReceive = faults.SiteDestReceive
	// FaultDestCrash crashes the destination mid-stream (permanent).
	FaultDestCrash = faults.SiteDestCrash
	// FaultPostCopyFetch fails one post-copy demand fetch.
	FaultPostCopyFetch = faults.SitePostCopyFetch
	// FaultCorruptPageStream flips a bit in a page payload in flight; the
	// digest audit detects and repairs it (or aborts cleanly).
	FaultCorruptPageStream = faults.SiteCorruptPage
	// FaultHostCrash takes a destination host down for a window: every
	// in-flight move targeting it dies with ErrDestinationLost and the
	// fabric refuses new transfers toward it until the window passes.
	// Scope with host=<name>; unscoped it matches every host.
	FaultHostCrash = faults.SiteHostCrash
	// FaultHostFlaky makes a host refuse page receives (transiently) for a
	// window — the engine's retry/backoff rides it out or exhausts.
	FaultHostFlaky = faults.SiteHostFlaky
)

// Errors surfaced by aborted migrations, re-exported for errors.Is checks.
var (
	// ErrDestinationLost reports a destination that crashed mid-stream.
	ErrDestinationLost = migration.ErrDestinationLost
	// ErrRetriesExhausted wraps the last transient error once the retry
	// budget or stage deadline is exhausted.
	ErrRetriesExhausted = migration.ErrRetriesExhausted
	// ErrIntegrity reports a switchover digest audit that could not be
	// healed within the repair budget.
	ErrIntegrity = migration.ErrIntegrity
	// ErrCancelled reports a run aborted by EngineConfig.CancelAfter or
	// ShouldCancel; with EnableResume set the abort still mints a token.
	ErrCancelled = migration.ErrCancelled
)

// ReasonResumeRefetch tags the sends a resumed run paid for because its
// token could not prove the page intact at the destination; the full send
// taxonomy is enumerated by SendReasons.
const ReasonResumeRefetch = ledger.ReasonResumeRefetch

// NewFaultInjector compiles a fault plan against the VM's virtual clock.
func NewFaultInjector(c *Clock, plan FaultPlan) (*FaultInjector, error) {
	return faults.NewInjector(c, plan)
}

// ParseFaultRule parses the CLI fault-rule syntax
// (site[@at][#nth][,key=value...]), e.g. "link.partition@10s,for=2s" or
// "dest.receive#3,count=2".
func ParseFaultRule(spec string) (FaultRule, error) { return faults.ParseRule(spec) }

// ParseFaultPlan parses each spec with ParseFaultRule.
func ParseFaultPlan(specs []string) (FaultPlan, error) { return faults.ParsePlan(specs) }

// FaultSites enumerates every injection site in presentation order.
func FaultSites() []FaultSite { return faults.Sites() }

// RandomFaultPlan derives a valid random fault plan (1..budget rules) from a
// seed — the chaos search's plan generator, also handy for ad-hoc fuzzing.
// The same seed always yields the same plan.
func RandomFaultPlan(seed int64, budget int) FaultPlan { return faults.RandomPlan(seed, budget) }

// RandomFaultPlanHosts is RandomFaultPlan with a host universe: host-scoped
// sites (host.crash, host.flaky) join the draw and may aim at the named
// hosts. With no hosts it is exactly RandomFaultPlan.
func RandomFaultPlanHosts(seed int64, budget int, hosts []string) FaultPlan {
	return faults.RandomPlanHosts(seed, budget, hosts)
}

// Migration modes.
const (
	// ModeXen is unmodified pre-copy migration, agnostic of applications.
	ModeXen = migration.ModeVanilla
	// ModeJAVMM is application-assisted migration with JVM assistance.
	ModeJAVMM = migration.ModeAppAssisted
	// ModePostCopy is the related-work post-copy baseline: switch over
	// first, then demand-fetch and pre-page memory.
	ModePostCopy = migration.ModePostCopy
	// ModeHybrid composes both engines: a bounded pre-copy warm phase
	// followed by a post-copy switchover for the remainder.
	ModeHybrid = migration.ModeHybrid
)

// Collector names for BootConfig.Collector.
const (
	// CollectorParallel is the contiguous-young-generation parallel
	// scavenger the paper prototypes against.
	CollectorParallel = workload.CollectorParallel
	// CollectorG1 is the garbage-first-style regional collector of the
	// paper's §6 future work: a non-contiguous, churning young generation.
	CollectorG1 = workload.CollectorG1
)

// Link bandwidth presets (payload bytes/sec).
const (
	// GigabitEthernet is the paper's testbed network.
	GigabitEthernet = netsim.GigabitEffective
	// TenGigabitEthernet models the §6 upgraded environment.
	TenGigabitEthernet = netsim.TenGigabitEffective
)

// NewScheduler attaches a cooperative process scheduler to the clock; see
// DESIGN.md §15. Library users composing their own multi-VM scenarios start
// here — MigrateMany wraps the common case.
func NewScheduler(c *Clock) *Scheduler { return simclock.NewScheduler(c) }

// NewFabric returns an empty network fabric on the clock; add hosts and
// shared links, then Dial ports whose transfers contend for bandwidth.
func NewFabric(c *Clock) *Fabric { return netsim.NewFabric(c) }

// MigrateMany live-migrates N VMs concurrently over one shared network
// fabric, all on a single deterministic clock: each VM gets a guest process
// that keeps its workload running and an engine process driving its
// migration, and every bulk transfer contends for the shared backbone under
// progressive fair-share arbitration. Per-VM outcomes come back in boot
// order together with the merged fabric accounting. Same options in, same
// result out — bit for bit, under the race detector too.
func MigrateMany(opts FleetOptions) (*FleetResult, error) { return fleet.Run(opts) }

// Launch orderings for OrchestratorOptions.Ordering, dumbest to smartest.
const (
	// OrderNaive launches every migration at once, no admission control.
	OrderNaive = fleet.OrderNaive
	// OrderAdmission launches FIFO behind the admission policy's caps.
	OrderAdmission = fleet.OrderAdmission
	// OrderCycleAware adds workload-cycle timing and convergence-aware
	// deferral (bounded by QuietHorizon) on top of admission control.
	OrderCycleAware = fleet.OrderCycleAware
)

// Orchestrate executes a batch migration plan on a cluster: every guest and
// engine runs on one deterministic clock and shared fabric, launches follow
// the chosen ordering under admission control, and the whole plan replays
// bit-identically at the same seed. See DESIGN.md §17.
func Orchestrate(opts OrchestratorOptions) (*PlanResult, error) { return fleet.Orchestrate(opts) }

// Move outcomes for a healed plan (PlanMoveResult.Outcome).
const (
	// MovePending never reached a terminal state (healing off, or the move
	// never launched).
	MovePending = fleet.OutcomePending
	// MoveCompleted succeeded on the first attempt.
	MoveCompleted = fleet.OutcomeCompleted
	// MoveRetried succeeded after 1+ retries against the same destination.
	MoveRetried = fleet.OutcomeRetried
	// MoveRelocated succeeded after re-selection to another destination.
	MoveRelocated = fleet.OutcomeRelocated
	// MoveFailed exhausted its healing budget; the source VM keeps running.
	MoveFailed = fleet.OutcomeFailed
)

// ParseBreakerPolicy parses the CLI breaker grammar
// "threshold/window/cooldown" (e.g. "3/2m/5m") or "off".
func ParseBreakerPolicy(s string) (BreakerPolicy, error) { return fleet.ParseBreakerPolicy(s) }

// ReadHealingSummary reads a healing summary written by
// HealingSummary.WriteJSON (javmm-migrate -heal-out).
func ReadHealingSummary(path string) (*HealingSummary, error) {
	return fleet.ReadHealingSummary(path)
}

// ParseCluster parses the declarative cluster grammar (statements separated
// by semicolons or newlines):
//
//	host H [rack R] [ram 16G] [cores 16] [nic 1G]
//	link L bw 1G [lat 100us] hosts a,b,c
//	vm V on H [workload derby] [mem 2G] [cycle period/quietStart/quietLen/factor[/phase]]
//
// When no link is declared, a default gigabit backbone connects every host.
func ParseCluster(text string) (*Cluster, error) { return fleet.ParseCluster(text) }

// ParseMigrationPlan parses the batch-plan grammar, one directive per
// statement: "evacuate host H", "drain rack R", "migrate vm V to H",
// "rebalance to N%". Directives compile against a Cluster at Orchestrate
// time.
func ParseMigrationPlan(text string) (*MigrationPlan, error) { return fleet.ParseMigrationPlan(text) }

// ParseOrdering parses an ordering name: "naive", "admission" or
// "cycle-aware".
func ParseOrdering(s string) (Ordering, error) { return fleet.ParseOrdering(s) }

// VerifyAdmission re-checks a plan's executed engine windows against an
// admission policy: at no instant may more migrations overlap on a link or
// into a destination host than the policy allows.
func VerifyAdmission(moves []PlanMoveResult, policy AdmissionPolicy) error {
	return fleet.VerifyAdmission(moves, policy)
}

// NewTracer returns a tracer recording against the given virtual clock.
func NewTracer(c *Clock) *Tracer { return obs.New(c) }

// NewMetrics returns a metrics registry keyed to the given virtual clock.
func NewMetrics(c *Clock) *Metrics { return obs.NewMetrics(c) }

// NewLedger returns an empty provenance ledger; pass it as
// MigrateOptions.Ledger and read it back after the run.
func NewLedger() *Ledger { return ledger.New() }

// SendReasons enumerates the ledger's send taxonomy in deterministic
// presentation order; SkipReasons does the same for skips.
func SendReasons() []SendReason { return ledger.SendReasons() }

// SkipReasons enumerates the ledger's skip taxonomy in deterministic
// presentation order.
func SkipReasons() []SkipReason { return ledger.SkipReasons() }

// WriteTraceJSONL exports recorded events as one JSON object per line.
func WriteTraceJSONL(w io.Writer, events []Event) error { return obs.WriteJSONL(w, events) }

// WriteTraceChrome exports recorded events as Chrome trace_event JSON,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
func WriteTraceChrome(w io.Writer, events []Event) error { return obs.WriteChromeTrace(w, events) }

// WriteTraceChromeLanes exports several event streams as one merged Chrome
// trace: lane i becomes process i+1, named after the lane — the fleet
// timeline form FleetCollector.WriteChromeTrace produces.
func WriteTraceChromeLanes(w io.Writer, lanes []TraceLane) error {
	return obs.WriteChromeTraceLanes(w, lanes)
}

// WritePrometheusLabeled renders several labeled snapshots as one Prometheus
// page: same-named series merge under one TYPE header, label keys and rows in
// deterministic order. A single unlabeled snapshot renders byte-identically
// to WritePrometheus.
func WritePrometheusLabeled(w io.Writer, snaps []LabeledSnapshot) error {
	return obs.WritePrometheusLabeled(w, snaps)
}

// WriteFleetSnapshotJSON exports a fleet metrics snapshot as indented JSON;
// ReadFleetSnapshotJSON parses it back (javmm-analyze's fleet ingest format).
func WriteFleetSnapshotJSON(w io.Writer, s FleetSnapshot) error {
	return fleetobs.WriteSnapshotJSON(w, s)
}

// ReadFleetSnapshotJSON parses a snapshot written by WriteFleetSnapshotJSON.
func ReadFleetSnapshotJSON(r io.Reader) (FleetSnapshot, error) {
	return fleetobs.ReadSnapshotJSON(r)
}

// FleetLabeledSnapshots rebuilds the labeled-snapshot list from an ingested
// fleet snapshot, ready for WritePrometheusLabeled.
func FleetLabeledSnapshots(s FleetSnapshot) []LabeledSnapshot {
	return fleetobs.LabeledFromSnapshot(s)
}

// WriteFleetSLAJSON exports a fleet SLA cost as indented JSON;
// ReadFleetSLAJSON parses it back.
func WriteFleetSLAJSON(w io.Writer, f FleetSLACost) error { return sla.WriteJSON(w, f) }

// ReadFleetSLAJSON parses a fleet cost written by WriteFleetSLAJSON.
func ReadFleetSLAJSON(r io.Reader) (FleetSLACost, error) { return sla.ReadJSON(r) }

// BuildSLACost prices one run against the model: downtime × penalty plus the
// throughput-dip integral over the sampled workload curve. The attribution
// must already reconcile (Attribute checks); the returned cost re-derives
// exactly from its inputs via SLACost.Reconcile.
func BuildSLACost(vm string, m SLAModel, a *Attribution, samples []Sample) SLACost {
	return sla.Build(vm, m, a, samples)
}

// AggregateSLA folds per-VM costs into the fleet view.
func AggregateSLA(costs []SLACost) FleetSLACost { return sla.Aggregate(costs) }

// ReadTraceJSONL parses a trace previously exported with WriteTraceJSONL.
func ReadTraceJSONL(r io.Reader) ([]Event, error) { return obs.ReadJSONL(r) }

// WriteMetricsJSON exports a metrics snapshot as indented JSON, and
// ReadMetricsJSON parses it back.
func WriteMetricsJSON(w io.Writer, s MetricsSnapshot) error { return obs.WriteMetricsJSON(w, s) }

// ReadMetricsJSON parses a snapshot written by WriteMetricsJSON.
func ReadMetricsJSON(r io.Reader) (MetricsSnapshot, error) { return obs.ReadMetricsJSON(r) }

// WritePrometheus renders a metrics snapshot in Prometheus text exposition
// format (javmm_-prefixed metric names).
func WritePrometheus(w io.Writer, s MetricsSnapshot) error { return obs.WritePrometheus(w, s) }

// Attribute builds the reconciled run accounting from a migration result and
// the (optional) ledger attached to the run: the exact downtime breakdown,
// the per-reason traffic split and the per-iteration dirty-rate/traffic
// series. It returns an error if the attribution does not reconcile with the
// Report byte-for-byte and tick-for-tick — which would mean the
// instrumentation itself is broken.
func Attribute(res *Result, led *Ledger) (*Attribution, error) {
	a := attrib.Build(res.Report, res.EnforcedGC, led)
	if err := a.Reconcile(res.Report); err != nil {
		return nil, err
	}
	return a, nil
}

// ParseMode parses a migration mode name: "xen" (vanilla pre-copy),
// "javmm" (application-assisted), "post-copy" or "hybrid". Every parsed
// mode is accepted by Migrate and round-trips through Mode.String.
func ParseMode(s string) (Mode, error) { return migration.ParseMode(s) }

// Workloads returns the nine SPECjvm2008-like workload profiles (Table 1).
func Workloads() []Profile { return workload.Catalog() }

// Workload returns the named catalog profile.
func Workload(name string) (Profile, error) { return workload.Lookup(name) }

// WorkloadNames returns the catalog names in Table 1 order.
func WorkloadNames() []string { return workload.Names() }

// BootVM assembles a VM running the given workload. With Assisted set the
// JAVMM TI agent is loaded, enabling ModeJAVMM migration; either way the VM
// can be migrated with ModeXen.
func BootVM(cfg BootConfig) (*VM, error) { return workload.Boot(cfg) }

// MigrateOptions parameterizes Migrate.
type MigrateOptions struct {
	// Mode selects the migration engine: vanilla pre-copy (ModeXen),
	// application-assisted (ModeJAVMM, requires a VM booted with
	// Assisted), post-copy (ModePostCopy) or hybrid pre+post-copy
	// (ModeHybrid).
	Mode Mode
	// Bandwidth is the link's payload bandwidth in bytes/sec
	// (default GigabitEthernet).
	Bandwidth uint64
	// Latency is the link's one-way latency (default 100 µs).
	Latency time.Duration
	// Engine overrides pre-copy engine defaults (iteration cap, dirty
	// threshold, compression, ...). Mode above wins over Engine.Mode.
	Engine EngineConfig
	// SkipVerify disables the post-migration correctness check.
	SkipVerify bool
	// Executor overrides the guest executor run during migration; nil uses
	// the VM's workload driver. Use Multiplex to run several applications.
	Executor GuestExecutor
	// Tracer, when non-nil, records the migration as structured events on
	// the virtual clock: engine iterations and stop-and-copy, LKM state
	// transitions, GC spans, netlink messages, throughput samples. It is
	// attached to every instrumented layer of the VM for the run.
	Tracer *Tracer
	// Metrics, when non-nil, accumulates counters/gauges/histograms from
	// the same emit points (migration.*, jvm.gc.*, lkm.*, net.*).
	Metrics *Metrics
	// Ledger, when non-nil, records per-page provenance for the run: every
	// page send tagged with its iteration and reason, every skip with its
	// cause. Feed it to Attribute afterwards for the reconciled breakdown.
	Ledger *Ledger
	// Faults, when non-nil, injects the plan's faults into every layer of
	// the run (link, netlink bus, LKM handshake, destination, demand-fetch
	// path) and enables graceful degradation: an assisted run whose
	// suspension handshake fails completes with vanilla pre-copy semantics
	// instead of erroring. Tune retries/backoff via Engine.Recovery.
	Faults *FaultInjector
}

// Result combines the engine report with guest-side observations.
type Result struct {
	*Report
	// WorkloadDowntime is the application-visible downtime: stop-and-copy
	// and resumption, plus (JAVMM) the enforced GC and final bitmap update.
	WorkloadDowntime time.Duration
	// EnforcedGC is the duration of the pre-suspension collection (zero
	// for ModeXen).
	EnforcedGC time.Duration
	// VerifyErr is the destination-consistency check outcome; nil means
	// every required page matched (always nil when SkipVerify).
	VerifyErr error
	// Destination holds the destination host's copy of the VM memory.
	Destination *migration.Destination
}

// ResumeToken returns the resume credential the run minted on abort, or nil
// for a completed run (or one without Engine.Recovery.EnableResume).
func (r *Result) ResumeToken() *ResumeToken {
	if r == nil || r.Report == nil || r.Report.Recovery == nil {
		return nil
	}
	return r.Report.Recovery.Token
}

// Migrate live-migrates the VM over a simulated link and returns the
// combined result. The VM keeps running (at "the destination") afterwards
// and can be migrated again.
func Migrate(vm *VM, opts MigrateOptions) (*Result, error) {
	return runMigration(vm, opts, nil, nil)
}

// Resume continues an aborted migration from the token its abort minted
// (requires the aborted run to have set Engine.Recovery.EnableResume). The
// same destination image is reused; the engine re-validates everything the
// token claims and transfers only the pages it cannot prove intact —
// degrading to a full first copy against a destination that crashed or was
// discarded. Pass fresh options: a nil Faults detaches the aborted run's
// injector from every layer, so the resume does not replay the same faults
// unless explicitly asked to.
func Resume(vm *VM, prior *Result, opts MigrateOptions) (*Result, error) {
	if prior == nil || prior.Report == nil || prior.Report.Recovery == nil ||
		prior.Report.Recovery.Token == nil {
		return nil, fmt.Errorf("javmm: prior result carries no resume token (set Engine.Recovery.EnableResume)")
	}
	tok := prior.Report.Recovery.Token
	opts.Mode = tok.Mode
	return runMigration(vm, opts, prior.Destination, tok)
}

// runMigration is the shared plumbing behind Migrate and Resume: wire the
// link, destination, fault plane and observability onto a fresh Source, run
// it, and fold the guest-side observations into the Result.
func runMigration(vm *VM, opts MigrateOptions, dest *migration.Destination, tok *migration.ResumeToken) (*Result, error) {
	if opts.Bandwidth == 0 {
		opts.Bandwidth = GigabitEthernet
	}
	if opts.Latency == 0 {
		opts.Latency = 100 * time.Microsecond
	}
	cfg := opts.Engine
	cfg.Mode = opts.Mode
	if opts.Tracer != nil {
		cfg.Tracer = opts.Tracer
	}
	if opts.Metrics != nil {
		cfg.Metrics = opts.Metrics
	}
	if opts.Ledger != nil {
		cfg.Ledger = opts.Ledger
	}
	if opts.Faults != nil {
		cfg.Faults = opts.Faults
		opts.Faults.SetObs(cfg.Tracer, cfg.Metrics)
	}
	vm.AttachObs(cfg.Tracer, cfg.Metrics)

	exec := opts.Executor
	if exec == nil {
		exec = vm.Driver
	}
	link := netsim.NewLink(vm.Clock, opts.Bandwidth, opts.Latency)
	link.SetMetrics(cfg.Metrics)
	link.SetFaults(opts.Faults)
	if dest == nil {
		dest = migration.NewDestination(vm.Dom.NumPages())
	}
	dest.SetMetrics(cfg.Metrics)
	dest.SetFaults(opts.Faults)
	vm.Guest.LKM.SetFaults(opts.Faults)
	vm.Guest.Bus.SetFaults(opts.Faults)
	src := &migration.Source{
		Dom:   vm.Dom,
		LKM:   vm.Guest.LKM,
		Link:  link,
		Clock: vm.Clock,
		Exec:  exec,
		Dest:  dest,
		Cfg:   cfg,
	}
	var report *migration.Report
	var err error
	if tok != nil {
		report, err = src.Resume(tok)
	} else {
		report, err = src.Migrate()
	}
	if err != nil {
		// A fault-aborted run still produced a partial report (recovery
		// section, abort reason) and a discarded destination; surface both
		// beside the error so callers and tests can inspect the rollback.
		if report != nil {
			return &Result{Report: report, Destination: dest}, err
		}
		return nil, err
	}
	if vm.Driver.Err != nil {
		return nil, fmt.Errorf("javmm: workload failed during migration: %w", vm.Driver.Err)
	}
	res := &Result{Report: report, Destination: dest}
	hist := vm.Heap.GCHistory()
	for i := len(hist) - 1; i >= 0; i-- {
		if st := hist[i]; st.Enforced {
			res.EnforcedGC = st.Duration
			break
		}
	}
	res.WorkloadDowntime = report.VMDowntime
	// Keyed on the EFFECTIVE mode: a run degraded to vanilla pre-copy never
	// performed the final update, and its workload downtime is plain
	// stop-and-copy plus resumption.
	if report.EffectiveMode() == ModeJAVMM {
		res.WorkloadDowntime += res.EnforcedGC + report.FinalUpdate
	}
	// Store-equality verification only applies to runs that finish at VM
	// pause; after a post-copy switchover the guest keeps dirtying pages
	// while the remainder streams over, so the invariant is residency
	// (every page fetched at its final version), checked by the engine's
	// demand-fetch path itself.
	if !opts.SkipVerify && report.PostCopy == nil {
		res.VerifyErr = migration.VerifyMigration(
			vm.Dom.Store(), dest.Store, report.FinalTransfer,
			func(p mem.PFN) bool { return vm.Guest.Frames.Allocated(p) })
	}
	return res, nil
}

// The real-clock performance-observability plane (internal/obs/perf). Unlike
// Tracer/Metrics/Ledger — which run on the virtual clock and are part of the
// deterministic contract — the stage profiler measures the simulator itself:
// wall time and heap allocation per engine stage. Attach one via
// EngineConfig.Perf; it never changes a run's Report.
type (
	// StageProfiler attributes the simulator's own wall time and heap
	// allocations to the engine's stage taxonomy (skip policy, wire codec,
	// stop policy, suspension protocol, page sink, lazy fetch, digest
	// audit).
	StageProfiler = perf.Profiler
	// StageStats is one stage's accumulated account (calls, self/total
	// wall time, self-attributed allocation).
	StageStats = perf.StageStats
	// DeterministicMetrics is the seed-determined metric block shared by
	// javmm-bench snapshots and javmm-analyze -json: a pure function of
	// (seed, config) under the virtual clock, byte-identical across
	// machines.
	DeterministicMetrics = perf.Deterministic
)

// NewStageProfiler returns a stage profiler with allocation accounting and
// pprof goroutine labels enabled — the configuration the bench harness's
// accounting run uses. For minimum overhead build one directly with
// perf.NewProfiler and no options.
func NewStageProfiler() *StageProfiler {
	return perf.NewProfiler(perf.WithAllocs(), perf.WithPprofLabels())
}

// BenchDeterministic projects a migration result onto the deterministic
// metric block of the perf plane's snapshot schema. Mode is the run's
// effective mode; the Workload and Codec labels are left for the caller,
// which knows what it booted and configured.
func BenchDeterministic(res *Result) DeterministicMetrics {
	d := DeterministicMetrics{
		Mode:               res.EffectiveMode().String(),
		TotalVirtualNs:     int64(res.TotalTime),
		VMDowntimeNs:       int64(res.VMDowntime),
		WorkloadDowntimeNs: int64(res.WorkloadDowntime),
		Iterations:         len(res.Iterations),
		PagesSent:          int64(res.TotalPagesSent),
		BytesOnWire:        int64(res.TotalBytes()),
		EnforcedGC:         res.EnforcedGC > 0,
	}
	var skipped uint64
	for _, it := range res.Iterations {
		skipped += it.PagesSkippedDirty + it.PagesSkippedBitmap + it.PagesSkippedFree
	}
	d.PagesSkipped = int64(skipped)
	if pc := res.PostCopy; pc != nil {
		d.PostCopyFaults = int64(pc.Faults)
	}
	if ic := res.Integrity; ic != nil {
		d.RollingDigest = fmt.Sprintf("%016x", ic.RollingDigest)
	}
	return d
}

// PostCopyStats describes a post-copy migration's demand-fault behaviour.
type PostCopyStats = migration.PostCopyStats

// MigratePostCopy migrates the VM post-copy style (related work, §2 of the
// paper): minimal downtime by construction, but the resumed VM stalls on
// demand faults until its working set arrives. Store-equality verification
// does not apply — after switchover the VM's memory IS the destination
// memory; the returned Result carries the fault statistics instead. It is a
// convenience wrapper over Migrate with Mode set to ModePostCopy.
func MigratePostCopy(vm *VM, opts MigrateOptions) (*Result, *PostCopyStats, error) {
	opts.Mode = ModePostCopy
	res, err := Migrate(vm, opts)
	if err != nil {
		return nil, nil, err
	}
	return res, res.Report.PostCopy, nil
}

// ReplicationReport summarizes a continuous-checkpointing run.
type ReplicationReport = replication.Report

// Replicate runs Remus-style continuous checkpointing of the VM to a backup
// host for the given virtual window (paper §2's RemusDB relative). With
// deprotect set, the applications' skip-over areas — JAVMM's young
// generation — are omitted from every checkpoint (memory deprotection).
func Replicate(vm *VM, window time.Duration, deprotect bool, bandwidth uint64) (*ReplicationReport, error) {
	if bandwidth == 0 {
		bandwidth = GigabitEthernet
	}
	r := &replication.Replicator{
		Dom:    vm.Dom,
		LKM:    vm.Guest.LKM,
		Link:   netsim.NewLink(vm.Clock, bandwidth, 100*time.Microsecond),
		Clock:  vm.Clock,
		Exec:   vm.Driver,
		Backup: migration.NewDestination(vm.Dom.NumPages()),
		Cfg:    replication.Config{Deprotect: deprotect},
	}
	rep, err := r.Protect(window)
	if err != nil {
		return nil, err
	}
	if vm.Driver.Err != nil {
		return nil, fmt.Errorf("javmm: workload failed during replication: %w", vm.Driver.Err)
	}
	return rep, nil
}

// NewCacheVM boots a VM running the memcached-like cache application of the
// §6 extension instead of a JVM workload. The returned app implements
// GuestExecutor; migrate with MigrateCustom.
func NewCacheVM(memBytes, cacheBytes uint64, assisted bool) (*CacheApp, *Guest, *Clock, error) {
	if memBytes == 0 {
		memBytes = 2 << 30
	}
	clock := simclock.New()
	dom := hypervisor.NewDomain("cache-vm", clock, mem.NewVersionStore(memBytes/mem.PageSize), 4)
	g := guestos.NewGuest(dom, guestos.LKMConfig{Clock: clock})
	app, err := cacheapp.Launch(cacheapp.Config{
		Guest:      g,
		Clock:      clock,
		CacheBytes: cacheBytes,
		Assisted:   assisted,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	return app, g, clock, nil
}

// MigrateCustom migrates a guest driven by any GuestExecutor (e.g. a
// CacheApp, or an application built directly on the framework). required, if
// non-nil, refines the verification predicate: return false for pages whose
// content is legitimately meaningless at the destination (freed frames are
// always exempt).
func MigrateCustom(g *Guest, exec GuestExecutor, opts MigrateOptions, required func(p mem.PFN) bool) (*Result, error) {
	if opts.Bandwidth == 0 {
		opts.Bandwidth = GigabitEthernet
	}
	if opts.Latency == 0 {
		opts.Latency = 100 * time.Microsecond
	}
	cfg := opts.Engine
	cfg.Mode = opts.Mode
	if opts.Tracer != nil {
		cfg.Tracer = opts.Tracer
	}
	if opts.Metrics != nil {
		cfg.Metrics = opts.Metrics
	}
	if opts.Ledger != nil {
		cfg.Ledger = opts.Ledger
	}
	if opts.Faults != nil {
		cfg.Faults = opts.Faults
		opts.Faults.SetObs(cfg.Tracer, cfg.Metrics)
	}
	g.LKM.SetObs(cfg.Tracer, cfg.Metrics)
	g.Bus.SetTracer(cfg.Tracer)
	g.LKM.SetFaults(opts.Faults)
	g.Bus.SetFaults(opts.Faults)

	link := netsim.NewLink(g.Dom.Clock(), opts.Bandwidth, opts.Latency)
	link.SetMetrics(cfg.Metrics)
	link.SetFaults(opts.Faults)
	dest := migration.NewDestination(g.Dom.NumPages())
	dest.SetMetrics(cfg.Metrics)
	dest.SetFaults(opts.Faults)
	src := &migration.Source{
		Dom:   g.Dom,
		LKM:   g.LKM,
		Link:  link,
		Clock: g.Dom.Clock(),
		Exec:  exec,
		Dest:  dest,
		Cfg:   cfg,
	}
	report, err := src.Migrate()
	if err != nil {
		if report != nil {
			return &Result{Report: report, Destination: dest}, err
		}
		return nil, err
	}
	res := &Result{Report: report, Destination: dest, WorkloadDowntime: report.VMDowntime}
	if !opts.SkipVerify && report.PostCopy == nil {
		res.VerifyErr = migration.VerifyMigration(
			g.Dom.Store(), dest.Store, report.FinalTransfer,
			func(p mem.PFN) bool {
				if !g.Frames.Allocated(p) {
					return false
				}
				return required == nil || required(p)
			})
	}
	return res, nil
}

// PFN re-exports the page frame number type for verification predicates.
type PFN = mem.PFN

// VA re-exports the guest virtual address type.
type VA = mem.VA

// AttachCacheApp launches a cache application inside an existing VM's guest,
// alongside the JVM — the multi-application scenario of §6. The app gets its
// own process and (if assisted) its own netlink registration with the LKM,
// which coordinates concurrent transfer bitmap updates from all applications.
// Run it together with the VM's driver via Multiplex.
func AttachCacheApp(vm *VM, cacheBase VA, cacheBytes uint64, assisted bool) (*CacheApp, error) {
	return cacheapp.Launch(cacheapp.Config{
		Guest:      vm.Guest,
		Clock:      vm.Clock,
		CacheBase:  cacheBase,
		CacheBytes: cacheBytes,
		Assisted:   assisted,
	})
}

// MultiExec time-shares the guest CPUs among several executors, round-robin
// in one-millisecond slices: while one application's slice runs, the others
// are descheduled. It implements GuestExecutor.
type MultiExec struct {
	execs []GuestExecutor
	next  int
}

// Multiplex combines executors into one round-robin MultiExec.
func Multiplex(execs ...GuestExecutor) *MultiExec {
	if len(execs) == 0 {
		panic("javmm: Multiplex needs at least one executor")
	}
	return &MultiExec{execs: execs}
}

// Run implements GuestExecutor.
func (m *MultiExec) Run(d time.Duration) {
	const slice = time.Millisecond
	for d > 0 {
		q := slice
		if d < q {
			q = d
		}
		m.execs[m.next].Run(q)
		m.next = (m.next + 1) % len(m.execs)
		d -= q
	}
}
