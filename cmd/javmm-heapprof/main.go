// Command javmm-heapprof profiles Java heap usage and GC behaviour of the
// workload catalog, reproducing the §4.2 study behind Figure 5: how much
// memory each generation consumes, how much of the young generation is
// garbage at each minor GC, and how long collections take — the three
// observations that motivate JAVMM.
//
// Usage:
//
//	javmm-heapprof                    # all nine workloads, 10 minutes each
//	javmm-heapprof -workload derby -dur 120s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"javmm"
	"javmm/internal/experiments"
)

func main() {
	var (
		name   = flag.String("workload", "", "profile a single workload (default: all)")
		dur    = flag.Duration("dur", 600*time.Second, "virtual profiling duration")
		memMiB = flag.Uint64("mem", 2048, "VM memory in MiB")
		seed   = flag.Int64("seed", 1, "deterministic seed")
	)
	flag.Parse()
	if err := run(*name, *dur, *memMiB<<20, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "javmm-heapprof:", err)
		os.Exit(1)
	}
}

func run(name string, dur time.Duration, memBytes uint64, seed int64) error {
	profiles := javmm.Workloads()
	if name != "" {
		p, err := javmm.Workload(name)
		if err != nil {
			return err
		}
		profiles = []javmm.Profile{p}
	}

	fmt.Printf("%-9s %-5s %-10s %-10s %-11s %-10s %-10s %-10s %-9s\n",
		"workload", "cat", "young avg", "old avg", "garbage/GC", "live/GC", "garbage%", "GC time", "interval")
	for _, p := range profiles {
		hp, err := experiments.ProfileHeap(p, dur, memBytes, seed)
		if err != nil {
			return fmt.Errorf("profiling %s: %w", p.Name, err)
		}
		fmt.Printf("%-9s %-5d %-10s %-10s %-11s %-10s %-10.1f %-10v %-9s\n",
			hp.Workload, p.Category,
			mib(hp.AvgYoungCommitted), mib(hp.AvgOldUsed),
			mib(hp.AvgGarbagePerGC), mib(hp.AvgLivePerGC),
			hp.GarbageFraction*100,
			hp.AvgMinorGCDuration.Round(time.Millisecond),
			fmt.Sprintf("%.1fs", hp.GCIntervalSeconds))
	}
	return nil
}

func mib(b uint64) string { return fmt.Sprintf("%d MiB", b>>20) }
