package main

import (
	"testing"
	"time"
)

func TestRunSingleWorkload(t *testing.T) {
	if err := run("derby", 30*time.Second, 2<<30, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownWorkload(t *testing.T) {
	if err := run("nosuch", time.Second, 2<<30, 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestRunAllWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("full catalog profiling is slow in -short mode")
	}
	if err := run("", 20*time.Second, 2<<30, 1); err != nil {
		t.Fatal(err)
	}
}
