package main

import (
	"testing"
	"time"

	"javmm"
)

func TestRunJavmmMode(t *testing.T) {
	err := run("derby", "javmm", "parallel", 2048, 4, javmm.GigabitEthernet,
		60*time.Second, 0, 1, false, true)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunXenModeWithYoungOverride(t *testing.T) {
	err := run("compiler", "xen", "parallel", 2048, 4, javmm.GigabitEthernet,
		60*time.Second, 512, 1, false, false)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunCompression(t *testing.T) {
	err := run("crypto", "javmm", "g1", 1024, 2, javmm.GigabitEthernet,
		30*time.Second, 256, 1, true, false)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsUnknownWorkload(t *testing.T) {
	if err := run("nosuch", "xen", "parallel", 2048, 4, 1, time.Second, 0, 1, false, false); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestRunRejectsUnknownMode(t *testing.T) {
	if err := run("derby", "warp", "parallel", 2048, 4, 1, time.Second, 0, 1, false, false); err == nil {
		t.Fatal("unknown mode accepted")
	}
}
