package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"javmm"
	"javmm/internal/chaos"
)

// base returns the quick-test option set; cases tweak what they care about.
func base() options {
	return options{
		Workload:    "derby",
		Mode:        "javmm",
		Collector:   "parallel",
		MemMiB:      2048,
		VCPUs:       4,
		Bandwidth:   javmm.GigabitEthernet,
		Warmup:      60 * time.Second,
		Seed:        1,
		TraceFormat: "chrome",
		Verify:      true,
	}
}

func TestRunJavmmMode(t *testing.T) {
	o := base()
	o.Verbose = true
	if err := run(o, new(bytes.Buffer)); err != nil {
		t.Fatal(err)
	}
}

func TestRunXenModeWithYoungOverride(t *testing.T) {
	o := base()
	o.Workload = "compiler"
	o.Mode = "xen"
	o.YoungMiB = 512
	if err := run(o, new(bytes.Buffer)); err != nil {
		t.Fatal(err)
	}
}

func TestRunCompression(t *testing.T) {
	o := base()
	o.Workload = "crypto"
	o.Collector = "g1"
	o.MemMiB = 1024
	o.VCPUs = 2
	o.Warmup = 30 * time.Second
	o.YoungMiB = 256
	o.Compress = true
	if err := run(o, new(bytes.Buffer)); err != nil {
		t.Fatal(err)
	}
}

func TestRunPostCopyMode(t *testing.T) {
	o := base()
	o.Mode = "post-copy"
	o.Warmup = 30 * time.Second
	var buf bytes.Buffer
	if err := run(o, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"migration complete (post-copy)",
		"demand faults",
		"fully resident at",
		"verification        n/a",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("post-copy output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "destination pages match") {
		t.Fatal("post-copy run claimed store-equality verification")
	}
}

func TestRunHybridMode(t *testing.T) {
	o := base()
	o.Mode = "hybrid"
	o.Warmup = 30 * time.Second
	var buf bytes.Buffer
	if err := run(o, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"migration complete (hybrid)",
		"warm-phase resident",
		"fully resident at",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("hybrid output missing %q:\n%s", want, out)
		}
	}
}

func TestRunRejectsUnknownWorkload(t *testing.T) {
	o := base()
	o.Workload = "nosuch"
	if err := run(o, new(bytes.Buffer)); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestRunRejectsUnknownMode(t *testing.T) {
	o := base()
	o.Mode = "warp"
	if err := run(o, new(bytes.Buffer)); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestRunRejectsUnknownTraceFormat(t *testing.T) {
	o := base()
	o.TraceFormat = "xml"
	if err := run(o, new(bytes.Buffer)); err == nil {
		t.Fatal("unknown trace format accepted")
	}
}

func TestRunWritesChromeTrace(t *testing.T) {
	o := base()
	o.Warmup = 30 * time.Second
	o.TracePath = filepath.Join(t.TempDir(), "out.json")
	if err := run(o, new(bytes.Buffer)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(o.TracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid chrome JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}
	for i, e := range doc.TraceEvents {
		for _, k := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := e[k]; !ok {
				t.Fatalf("traceEvent %d missing %q", i, k)
			}
		}
	}
}

func TestRunWritesJSONLTrace(t *testing.T) {
	o := base()
	o.Warmup = 30 * time.Second
	o.TracePath = filepath.Join(t.TempDir(), "out.jsonl")
	o.TraceFormat = "jsonl"
	if err := run(o, new(bytes.Buffer)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(o.TracePath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) == 0 {
		t.Fatal("empty trace")
	}
	for i, ln := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(ln), &obj); err != nil {
			t.Fatalf("line %d invalid: %v", i, err)
		}
	}
}

func TestRunMetricsSummary(t *testing.T) {
	o := base()
	o.Warmup = 30 * time.Second
	o.Metrics = true
	var buf bytes.Buffer
	if err := run(o, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"metrics at ", "migration.pages_sent", "jvm.gc.minor", "net.bytes_sent"} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics summary missing %q:\n%s", want, out)
		}
	}
}

func TestRunWritesMetricsSnapshot(t *testing.T) {
	o := base()
	o.Warmup = 30 * time.Second
	o.MetricsOut = filepath.Join(t.TempDir(), "metrics.json")
	var buf bytes.Buffer
	if err := run(o, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "metrics snapshot") {
		t.Fatal("report does not mention the written snapshot")
	}
	f, err := os.Open(o.MetricsOut)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	snap, err := javmm.ReadMetricsJSON(f)
	if err != nil {
		t.Fatalf("snapshot does not read back: %v", err)
	}
	if _, ok := snap.Counter("migration.pages_sent"); !ok {
		t.Fatal("snapshot missing migration.pages_sent")
	}
}

func TestRunFaultDegradesToXen(t *testing.T) {
	o := base()
	o.Warmup = 30 * time.Second
	o.Faults = []string{"lkm.handshake"}
	o.FaultSeed = 1
	var buf bytes.Buffer
	if err := run(o, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "migration complete (xen)") {
		t.Fatalf("degraded run did not complete with xen semantics:\n%s", out)
	}
	if !strings.Contains(out, "DEGRADED") || !strings.Contains(out, "javmm -> xen") {
		t.Fatalf("degrade record missing from report:\n%s", out)
	}
	if !strings.Contains(out, "faults injected") {
		t.Fatalf("fault audit missing from report:\n%s", out)
	}
}

func TestRunFaultRetriesThroughPartition(t *testing.T) {
	o := base()
	o.Mode = "xen"
	o.Warmup = 30 * time.Second
	o.Faults = []string{"link.partition@2s,for=100ms"}
	var buf bytes.Buffer
	if err := run(o, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "migration complete (xen)") {
		t.Fatalf("run with healed partition did not complete:\n%s", out)
	}
	if !strings.Contains(out, "retries") {
		t.Fatalf("retry record missing from report:\n%s", out)
	}
}

func TestRunFaultAbortReportsRollback(t *testing.T) {
	o := base()
	o.Mode = "xen"
	o.Warmup = 30 * time.Second
	o.Faults = []string{"dest.crash@2s"}
	var buf bytes.Buffer
	err := run(o, &buf)
	if err == nil {
		t.Fatal("crashed-destination run succeeded")
	}
	out := buf.String()
	if !strings.Contains(out, "migration ABORTED") {
		t.Fatalf("abort banner missing:\n%s", out)
	}
	if !strings.Contains(out, "source VM           resumed") ||
		!strings.Contains(out, "destination         discarded") {
		t.Fatalf("rollback summary missing:\n%s", out)
	}
}

func TestRunResumeAfterAbort(t *testing.T) {
	o := base()
	o.Warmup = 30 * time.Second
	o.Faults = []string{"dest.receive#100,count=1000000"}
	o.Resume = true
	var buf bytes.Buffer
	if err := run(o, &buf); err != nil {
		t.Fatalf("resumed run failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"migration ABORTED",
		"destination         kept (resume token minted)",
		"resuming from token",
		"resume              trusted",
		"migration complete",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("resume output missing %q:\n%s", want, out)
		}
	}
}

func TestRunVerifyAuditsCorruption(t *testing.T) {
	o := base()
	o.Warmup = 30 * time.Second
	o.Faults = []string{"corrupt-page-stream#40,count=3"}
	var buf bytes.Buffer
	if err := run(o, &buf); err != nil {
		t.Fatalf("corrupting run failed under -verify: %v\n%s", err, buf.String())
	}
	if out := buf.String(); !strings.Contains(out, "integrity           ") {
		t.Fatalf("integrity audit line missing:\n%s", out)
	}
}

func TestRunVerifyDisabledNote(t *testing.T) {
	o := base()
	o.Warmup = 30 * time.Second
	o.Verify = false
	var buf bytes.Buffer
	if err := run(o, &buf); err != nil {
		t.Fatal(err)
	}
	if out := buf.String(); !strings.Contains(out, "integrity           DISABLED") {
		t.Fatalf("ablation note missing:\n%s", out)
	}
}

func TestRunRejectsBadFaultSpec(t *testing.T) {
	o := base()
	o.Faults = []string{"no.such.site"}
	if err := run(o, new(bytes.Buffer)); err == nil {
		t.Fatal("bad fault spec accepted")
	}
}

// planCluster is a small evacuation topology for the -plan tests: two VMs on
// one source, disjoint quiet windows so a cycle-aware run launches both quiet.
const planCluster = "host a ram 64G; host b ram 64G; host c ram 64G; " +
	"vm v1 on a workload mpeg mem 512M cycle 30s/10s/15s/0.1; " +
	"vm v2 on a workload compress mem 512M cycle 30s/10s/15s/0.1/15s"

func TestRunPlanCycleAware(t *testing.T) {
	o := base()
	o.Cluster = planCluster
	o.Plan = "evacuate host a"
	o.Ordering = "cycle-aware"
	o.MaxPerLink = 2
	o.MaxPerHost = 2
	o.Warmup = 5 * time.Second
	o.SLA = true
	var buf bytes.Buffer
	if err := run(o, &buf); err != nil {
		t.Fatalf("plan run failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		`orchestrating "evacuate host a"`,
		"wl-downtime",
		"v1", "v2", "a->",
		"OK (quiet)",
		"plan makespan",
		"admission verified: caps (link=2 host=2) never over-committed",
		"utilization",
		"SLA cost (default model): fleet",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("plan output missing %q:\n%s", want, out)
		}
	}
}

func TestRunPlanRejectsIncompleteSpec(t *testing.T) {
	o := base()
	o.Plan = "evacuate host a"
	if err := run(o, new(bytes.Buffer)); err == nil {
		t.Fatal("-plan without -cluster accepted")
	}
	o = base()
	o.Cluster = planCluster
	if err := run(o, new(bytes.Buffer)); err == nil {
		t.Fatal("-cluster without -plan accepted")
	}
}

func TestRunPlanRejectsBadOrdering(t *testing.T) {
	o := base()
	o.Cluster = planCluster
	o.Plan = "evacuate host a"
	o.Ordering = "chaotic"
	if err := run(o, new(bytes.Buffer)); err == nil {
		t.Fatal("unknown ordering accepted")
	}
}

func TestRunPlanRejectsPeers(t *testing.T) {
	o := base()
	o.Cluster = planCluster
	o.Plan = "evacuate host a"
	o.Ordering = "naive"
	o.Peers = 2
	if err := run(o, new(bytes.Buffer)); err == nil {
		t.Fatal("-plan composed with -peers")
	}
}

// The fleet chaos search promises that FleetViolation.Repro() is the exact
// javmm-migrate argument list that replays the shrunk fault plan. Prove it:
// parse the repro through the real flag definitions and run it — the replay
// must reproduce the planted integrity violation (a completed move whose
// image diverged because the audit was disabled).
func TestRunPlanReplaysChaosRepro(t *testing.T) {
	res := chaos.SearchFleet(chaos.FleetOptions{Seed: 1, Plans: 64, DisableIntegrityAudit: true})
	v := res.Violation
	if v == nil {
		t.Fatal("fleet search with the audit disabled found no violation to replay")
	}
	var o options
	fs := flag.NewFlagSet("javmm-migrate", flag.ContinueOnError)
	defineFlags(fs, &o)
	if err := fs.Parse(v.Repro()); err != nil {
		t.Fatalf("repro args do not parse through the CLI flag set: %v\nargs: %v", err, v.Repro())
	}
	var buf bytes.Buffer
	err := run(o, &buf)
	if err == nil {
		t.Fatalf("repro replay did not reproduce the violation %q:\n%s", v.Invariant, buf.String())
	}
	if out := buf.String(); !strings.Contains(out, "VERIFY FAILED") {
		t.Fatalf("replay output missing the verification failure (run err: %v):\n%s", err, out)
	}
}

// The healing twin of TestRunPlanReplaysChaosRepro: a violation found by the
// healing search carries the -retry/-max-attempts/-move-deadline/
// -plan-deadline/-breaker flags, parses through the real flag definitions,
// and replays to the same planted verification failure with healing on.
func TestRunPlanReplaysHealChaosRepro(t *testing.T) {
	res := chaos.SearchFleet(chaos.FleetOptions{Seed: 2, Plans: 64, Heal: true, DisableIntegrityAudit: true})
	v := res.Violation
	if v == nil {
		t.Fatal("healing search with the audit disabled found no violation to replay")
	}
	var o options
	fs := flag.NewFlagSet("javmm-migrate", flag.ContinueOnError)
	defineFlags(fs, &o)
	if err := fs.Parse(v.Repro()); err != nil {
		t.Fatalf("healing repro args do not parse through the CLI flag set: %v\nargs: %v", err, v.Repro())
	}
	if !o.Retry {
		t.Fatalf("healing repro did not set -retry: %v", v.Repro())
	}
	var buf bytes.Buffer
	err := run(o, &buf)
	if err == nil {
		t.Fatalf("healing repro replay did not reproduce the violation %q:\n%s", v.Invariant, buf.String())
	}
	if out := buf.String(); !strings.Contains(out, "VERIFY FAILED") || !strings.Contains(out, "healing:") {
		t.Fatalf("replay output missing the verification failure or healing summary (run err: %v):\n%s", err, out)
	}
}

// -retry surfaces the healing outcome table: a host crash on the preferred
// destination relocates the move, the status column says so, and -heal-out
// round-trips the summary JSON.
func TestRunPlanRetryHealsHostCrash(t *testing.T) {
	o := base()
	o.Cluster = "host src ram 64G; host d1 ram 64G; host d2 ram 64G; vm fv0 on src workload mpeg mem 512M"
	o.Plan = "evacuate host src"
	o.Ordering = "admission"
	o.MaxPerLink = 1
	o.MaxPerHost = 1
	o.Warmup = 2 * time.Second
	o.Mode = "xen"
	o.Retry = true
	o.Relocate = true
	o.Faults = []string{"host.crash@0s,for=10m,host=d1"}
	o.HealOut = filepath.Join(t.TempDir(), "heal.json")
	var buf bytes.Buffer
	if err := run(o, &buf); err != nil {
		t.Fatalf("healed plan run failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"[relocated, 2 attempt(s)]",
		"healing: 1 retries, 1 relocations",
		"healing summary",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("healed plan output missing %q:\n%s", want, out)
		}
	}
	hs, err := javmm.ReadHealingSummary(o.HealOut)
	if err != nil {
		t.Fatalf("reading healing summary: %v", err)
	}
	if len(hs.Moves) != 1 || hs.Relocations != 1 || hs.Moves[0].Outcome != "relocated" {
		t.Fatalf("healing summary = %+v, want one relocated move", hs)
	}
}

// -heal-out without -retry is a usage error, not a silent no-op.
func TestRunPlanHealOutNeedsRetry(t *testing.T) {
	o := base()
	o.Cluster = planCluster
	o.Plan = "evacuate host a"
	o.Ordering = "admission"
	o.HealOut = "x.json"
	if err := run(o, new(bytes.Buffer)); err == nil || !strings.Contains(err.Error(), "-retry") {
		t.Fatalf("err = %v, want the -heal-out usage error", err)
	}
}
