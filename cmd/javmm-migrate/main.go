// Command javmm-migrate live-migrates a simulated Java VM, the equivalent of
// the paper's added Xen management command (`xl migrate` with
// application-assistance, §3.3). It boots a VM running the chosen workload,
// warms it up, migrates it in the chosen mode and prints the migration
// report, optionally with the per-iteration breakdown, a metrics summary and
// a trace file loadable in Perfetto.
//
// Usage:
//
//	javmm-migrate -workload derby -mode javmm -warmup 300s -v
//	javmm-migrate -workload scimark -mode xen -bandwidth 117000000
//	javmm-migrate -workload derby -mode javmm -trace out.json -metrics
//
// With -plan it becomes the fleet orchestrator front end: -cluster declares
// hosts/links/VMs, -plan a batch plan ("evacuate host H", "drain rack R",
// "migrate vm V to H", "rebalance to N%"), -ordering the launch policy
// (naive, admission, cycle-aware), and admission caps bound concurrency:
//
//	javmm-migrate -cluster 'host a ram 64G; host b ram 64G; vm v1 on a; vm v2 on a' \
//	    -plan 'evacuate host a' -ordering cycle-aware -max-per-link 2
//
// -retry turns the orchestrator self-healing (DESIGN.md §18): failed moves
// retry with seeded backoff inside -max-attempts/-move-deadline/-plan-deadline
// budgets, permanent destination losses (host.crash faults) re-select a
// destination with the dead host excluded and the stale resume token degraded
// to a clean first copy, and a per-host circuit breaker (-breaker K/w/c)
// keeps repeat offenders out of re-selection until their cooldown:
//
//	javmm-migrate -cluster '...' -plan 'evacuate host a' -retry \
//	    -breaker 3/2m/5m -fault 'host.crash@0s,for=10m,host=b' -heal-out heal.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"javmm"
)

func main() {
	var o options
	defineFlags(flag.CommandLine, &o)
	flag.Parse()
	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "javmm-migrate:", err)
		os.Exit(1)
	}
}

// defineFlags binds every CLI knob to the flag set; a separate function so
// tests can round-trip argument lists (e.g. a chaos reproducer) through the
// real definitions.
func defineFlags(fs *flag.FlagSet, o *options) {
	fs.StringVar(&o.Workload, "workload", "derby", "workload to run: "+strings.Join(javmm.WorkloadNames(), ", "))
	fs.StringVar(&o.Mode, "mode", "javmm", "migration mode: xen, javmm, post-copy or hybrid")
	fs.Uint64Var(&o.MemMiB, "mem", 2048, "VM memory in MiB")
	fs.IntVar(&o.VCPUs, "vcpus", 4, "virtual CPUs")
	fs.Uint64Var(&o.Bandwidth, "bandwidth", javmm.GigabitEthernet, "link payload bandwidth in bytes/sec")
	fs.DurationVar(&o.Warmup, "warmup", 300*time.Second, "virtual warmup before migration")
	fs.Uint64Var(&o.YoungMiB, "young", 0, "override max young generation in MiB (0 = workload default)")
	fs.Int64Var(&o.Seed, "seed", 1, "deterministic seed")
	fs.IntVar(&o.Peers, "peers", 1, "migrate N VMs of this workload concurrently over one shared link")
	fs.DurationVar(&o.Stagger, "stagger", 500*time.Millisecond, "with -peers: delay between consecutive engine starts")
	fs.StringVar(&o.Cluster, "cluster", "", "declarative cluster topology (host/link/vm statements, ';'-separated) for -plan")
	fs.StringVar(&o.Plan, "plan", "", "batch migration plan to orchestrate against -cluster: 'evacuate host H', 'drain rack R', 'migrate vm V to H', 'rebalance to N%'")
	fs.StringVar(&o.Ordering, "ordering", "cycle-aware", "with -plan: launch policy (naive, admission or cycle-aware)")
	fs.IntVar(&o.MaxPerLink, "max-per-link", 1, "with -plan: admission cap on concurrent migrations per shared link (0 = unbounded)")
	fs.IntVar(&o.MaxPerHost, "max-per-host", 1, "with -plan: admission cap on concurrent inbound migrations per destination host (0 = unbounded)")
	fs.BoolVar(&o.Compress, "compress", false, "compress unskipped pages (§6 extension)")
	fs.StringVar(&o.Collector, "collector", "parallel", "garbage collector: parallel or g1")
	fs.BoolVar(&o.Verbose, "v", false, "print per-iteration details")
	fs.StringVar(&o.TracePath, "trace", "", "write a migration trace to this file")
	fs.StringVar(&o.TraceFormat, "trace-format", "chrome", "trace format: chrome (Perfetto-loadable) or jsonl")
	fs.BoolVar(&o.Metrics, "metrics", false, "print the metrics summary table after migration")
	fs.StringVar(&o.MetricsOut, "metrics-out", "", "write the metrics snapshot as JSON to this file")
	fs.BoolVar(&o.Progress, "progress", false, "print the live progress stream (phase, iteration, remaining, ETA) as the engines emit it")
	fs.BoolVar(&o.SLA, "sla", false, "price the run against the default SLA model and print the cost summary")
	fs.StringVar(&o.SLAOut, "sla-out", "", "with -peers: write the fleet SLA cost as JSON to this file")
	fs.Func("fault", "inject a fault: site[@at][#nth][,key=val...] (repeatable); e.g. 'link.partition@10s,for=2s', 'dest.receive#3,count=2', 'host.crash@30s,for=2m,host=d1'", func(s string) error {
		o.Faults = append(o.Faults, s)
		return nil
	})
	fs.Int64Var(&o.FaultSeed, "fault-seed", 1, "seed for the retry backoff jitter")
	fs.BoolVar(&o.Retry, "retry", false, "with -plan: self-healing orchestration — failed moves retry with seeded backoff, permanent destination losses re-select a destination, a per-host breaker gates re-selection (DESIGN.md §18)")
	fs.IntVar(&o.MaxAttempts, "max-attempts", 0, "with -retry: launch budget per move (0 = policy default)")
	fs.DurationVar(&o.MoveDeadline, "move-deadline", 0, "with -retry: give up on a move this long after its first launch (0 = policy default)")
	fs.DurationVar(&o.PlanDeadline, "plan-deadline", 0, "with -retry: stop launching attempts this long after warmup (0 = policy default)")
	fs.StringVar(&o.Breaker, "breaker", "", "with -retry: per-host circuit breaker as threshold/window/cooldown (e.g. 3/2m/5m), or 'off' (empty = policy default)")
	fs.BoolVar(&o.Relocate, "relocate", true, "with -retry: re-select a destination after a permanent failure (-relocate=false retries the same host only)")
	fs.StringVar(&o.HealOut, "heal-out", "", "with -retry: write the healing summary (per-move outcomes, retries, relocations, token savings) as JSON to this file (javmm-analyze -heal ingests it)")
	fs.BoolVar(&o.Resume, "resume", false, "on a clean abort, keep the destination image and resume the migration from the minted token (faults detached)")
	fs.BoolVar(&o.Verify, "verify", true, "end-to-end page-digest audit: detect and repair in-flight corruption at switchover (-verify=false ablates it)")
	fs.StringVar(&o.CPUProfile, "cpuprofile", "", "write a CPU profile of the run to this file (stages carry pprof labels)")
	fs.StringVar(&o.MemProfile, "memprofile", "", "write a heap profile at the end of the run to this file")
	fs.BoolVar(&o.StageProfile, "stage-profile", false, "print the real-clock per-stage wall/allocation table after migration")
}

// options collects every CLI knob; run is pure in it so tests drive the full
// command without a process boundary.
type options struct {
	Workload     string
	Mode         string
	Collector    string
	MemMiB       uint64
	VCPUs        int
	Bandwidth    uint64
	Warmup       time.Duration
	YoungMiB     uint64
	Seed         int64
	Peers        int
	Stagger      time.Duration
	Cluster      string
	Plan         string
	Ordering     string
	MaxPerLink   int
	MaxPerHost   int
	Compress     bool
	Verbose      bool
	TracePath    string
	TraceFormat  string // "chrome" or "jsonl"
	Metrics      bool
	MetricsOut   string
	Progress     bool
	SLA          bool
	SLAOut       string
	Faults       []string // -fault rule specs
	FaultSeed    int64
	Retry        bool
	MaxAttempts  int
	MoveDeadline time.Duration
	PlanDeadline time.Duration
	Breaker      string
	Relocate     bool
	HealOut      string
	Resume       bool
	Verify       bool
	CPUProfile   string
	MemProfile   string
	StageProfile bool
}

func run(o options, out io.Writer) error {
	if o.CPUProfile != "" {
		f, err := os.Create(o.CPUProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	prof, err := javmm.Workload(o.Workload)
	if err != nil {
		return err
	}
	if o.YoungMiB != 0 {
		prof.MaxYoungBytes = o.YoungMiB << 20
		if prof.InitialYoungBytes > prof.MaxYoungBytes {
			prof.InitialYoungBytes = prof.MaxYoungBytes
		}
	}
	mode, err := javmm.ParseMode(o.Mode)
	if err != nil {
		return err
	}
	if o.TraceFormat != "chrome" && o.TraceFormat != "jsonl" {
		return fmt.Errorf("unknown trace format %q (want chrome or jsonl)", o.TraceFormat)
	}
	if o.Plan != "" || o.Cluster != "" {
		if o.Peers > 1 {
			return fmt.Errorf("-plan does not compose with -peers (the cluster declares the VMs)")
		}
		return runPlan(o, mode, out)
	}
	if o.Peers > 1 {
		return runFleet(o, prof, mode, out)
	}

	vm, err := javmm.BootVM(javmm.BootConfig{
		MemBytes:  o.MemMiB << 20,
		VCPUs:     o.VCPUs,
		Profile:   prof,
		Assisted:  mode == javmm.ModeJAVMM,
		Seed:      o.Seed,
		Collector: o.Collector,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "booted %s: %d MiB, %d vCPUs, workload %s (category %d)\n",
		vm.Dom.Name(), o.MemMiB, o.VCPUs, prof.Name, prof.Category)
	fmt.Fprintf(out, "warming up for %v of virtual time...\n", o.Warmup)
	vm.Driver.Run(o.Warmup)
	if vm.Driver.Err != nil {
		return vm.Driver.Err
	}
	fmt.Fprintf(out, "at migration: young gen %d MiB committed, old gen %d MiB used, %d GCs so far\n",
		vm.Heap.YoungCommitted()>>20, vm.Heap.OldUsed()>>20, len(vm.Heap.GCHistory()))

	engine := javmm.EngineConfig{Compress: o.Compress}
	// The stage profiler feeds the -stage-profile table; under -cpuprofile it
	// is attached for its pprof goroutine labels alone, so samples group by
	// engine stage in `go tool pprof`.
	var stages *javmm.StageProfiler
	if o.StageProfile || o.CPUProfile != "" {
		stages = javmm.NewStageProfiler()
		engine.Perf = stages
	}
	if o.Verbose {
		fmt.Fprintf(out, "\n%-5s %-10s %-10s %-12s %-12s %-12s\n",
			"iter", "start", "duration", "sent", "skip-dirty", "skip-bitmap")
		engine.OnIteration = func(it javmm.IterationStats) {
			mark := " "
			if it.Last {
				mark = "*"
			}
			fmt.Fprintf(out, "%-4d%s %-10v %-10v %-12s %-12s %-12s\n",
				it.Index, mark,
				it.Start.Round(time.Millisecond),
				it.Duration.Round(time.Millisecond),
				mb(it.BytesOnWire),
				mb(it.PagesSkippedDirty*4096),
				mb(it.PagesSkippedBitmap*4096))
		}
	}

	engine.Recovery.Seed = o.FaultSeed
	engine.Recovery.EnableResume = o.Resume
	engine.Integrity.Disable = !o.Verify
	if o.Progress {
		engine.OnProgress = func(p javmm.Progress) { printProgress(out, p.VM, p) }
	}
	opts := javmm.MigrateOptions{
		Mode:      mode,
		Bandwidth: o.Bandwidth,
		Engine:    engine,
	}
	if len(o.Faults) > 0 {
		plan, err := javmm.ParseFaultPlan(o.Faults)
		if err != nil {
			return err
		}
		inj, err := javmm.NewFaultInjector(vm.Clock, plan)
		if err != nil {
			return err
		}
		opts.Faults = inj
	}
	var tracer *javmm.Tracer
	var metrics *javmm.Metrics
	if o.TracePath != "" {
		tracer = javmm.NewTracer(vm.Clock)
		opts.Tracer = tracer
	}
	if o.Metrics || o.MetricsOut != "" {
		metrics = javmm.NewMetrics(vm.Clock)
		opts.Metrics = metrics
	}
	res, err := javmm.Migrate(vm, opts)
	if err != nil {
		if res == nil || res.Recovery == nil || !res.Recovery.Aborted {
			return err
		}
		fmt.Fprintf(out, "\nmigration ABORTED after %v: %s\n",
			res.TotalTime.Round(time.Millisecond), res.Recovery.AbortReason)
		printRecovery(out, res.Recovery, opts.Faults)
		fmt.Fprintf(out, "  source VM           resumed (still authoritative)\n")
		if !o.Resume || res.ResumeToken() == nil {
			fmt.Fprintf(out, "  destination         discarded\n")
			return err
		}
		fmt.Fprintf(out, "  destination         kept (resume token minted)\n")
		fmt.Fprintf(out, "\nresuming from token (faults detached)...\n")
		res, err = javmm.Resume(vm, res, javmm.MigrateOptions{
			Bandwidth: o.Bandwidth,
			Engine:    engine,
			Tracer:    tracer,
			Metrics:   metrics,
		})
		if err != nil {
			return fmt.Errorf("resume failed: %w", err)
		}
	}

	effective := res.EffectiveMode()
	fmt.Fprintf(out, "\nmigration complete (%s):\n", effective)
	fmt.Fprintf(out, "  total time          %v\n", res.TotalTime.Round(time.Millisecond))
	fmt.Fprintf(out, "  total traffic       %.2f GB (%d pages)\n", float64(res.TotalBytes())/1e9, res.TotalPagesSent)
	fmt.Fprintf(out, "  iterations          %d (%d live + stop-and-copy)\n", len(res.Iterations), res.LiveIterations())
	fmt.Fprintf(out, "  VM downtime         %v\n", res.VMDowntime.Round(time.Millisecond))
	fmt.Fprintf(out, "  workload downtime   %v\n", res.WorkloadDowntime.Round(time.Millisecond))
	if effective == javmm.ModeJAVMM {
		fmt.Fprintf(out, "  enforced GC         %v\n", res.EnforcedGC.Round(time.Millisecond))
		fmt.Fprintf(out, "  final bitmap update %v\n", res.FinalUpdate.Round(time.Microsecond))
	}
	if res.Recovery != nil {
		printRecovery(out, res.Recovery, opts.Faults)
	}
	if pc := res.PostCopy; pc != nil {
		fmt.Fprintf(out, "  demand faults       %d (stalled the guest %v)\n", pc.Faults, pc.FaultStall.Round(time.Millisecond))
		fmt.Fprintf(out, "  prefetched pages    %d\n", pc.PrefetchPages)
		if mode == javmm.ModeHybrid {
			fmt.Fprintf(out, "  warm-phase resident %.1f MB at switchover\n", float64(pc.WarmPages*4096)/1e6)
		}
		fmt.Fprintf(out, "  fully resident at   %v\n", pc.ResidentAt.Round(time.Millisecond))
	}
	if rs := res.Resume; rs != nil {
		if rs.FullFirstCopy {
			fmt.Fprintf(out, "  resume              token refused, full first copy (%s)\n", rs.Reason)
		} else {
			fmt.Fprintf(out, "  resume              trusted %d pages, refetched %d (saved %s)\n",
				rs.TrustedPages, rs.RefetchPages, mb(rs.SavedBytes))
		}
	}
	if ic := res.Integrity; ic != nil {
		fmt.Fprintf(out, "  integrity           %d pages audited in %d rounds, %d mismatches, %d repaired (rolling digest %016x)\n",
			ic.PagesAudited, ic.AuditRounds, ic.Mismatches, ic.Repairs, ic.RollingDigest)
	} else if !o.Verify {
		fmt.Fprintf(out, "  integrity           DISABLED (-verify=false): in-flight corruption would go undetected\n")
	}
	fmt.Fprintf(out, "  daemon CPU (model)  %v\n", res.CPUTime.Round(time.Millisecond))
	if res.VerifyErr != nil {
		return fmt.Errorf("destination verification FAILED: %w", res.VerifyErr)
	}
	if res.PostCopy != nil {
		fmt.Fprintf(out, "  verification        n/a (post-copy phase: residency checked by the engine)\n")
	} else {
		fmt.Fprintf(out, "  verification        OK (destination pages match)\n")
	}

	if o.SLA {
		a, err := javmm.Attribute(res, nil)
		if err != nil {
			return err
		}
		m := javmm.DefaultSLA()
		c := javmm.BuildSLACost(vm.Dom.Name(), m, a, vm.Driver.Samples())
		if err := c.Reconcile(m, a, vm.Driver.Samples()); err != nil {
			return err
		}
		fmt.Fprintf(out, "  SLA cost            %.4f (downtime %.4f + dip %.4f: %.0f ops lost over %ds)\n",
			c.Total, c.DowntimeCost, c.DipCost, c.LostOps, c.DipSeconds)
	}

	if tracer != nil {
		if err := writeTrace(o.TracePath, o.TraceFormat, tracer.Events()); err != nil {
			return err
		}
		fmt.Fprintf(out, "  trace               %s (%d events, %s)\n", o.TracePath, tracer.Len(), o.TraceFormat)
	}
	if metrics != nil {
		snap := metrics.Snapshot()
		if o.MetricsOut != "" {
			if err := writeMetrics(o.MetricsOut, snap); err != nil {
				return err
			}
			fmt.Fprintf(out, "  metrics snapshot    %s\n", o.MetricsOut)
		}
		if o.Metrics {
			printMetrics(out, snap)
		}
	}
	if o.StageProfile {
		printStageProfile(out, stages)
	}
	if o.MemProfile != "" {
		f, err := os.Create(o.MemProfile)
		if err != nil {
			return err
		}
		runtime.GC()
		err = pprof.WriteHeapProfile(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "  heap profile        %s\n", o.MemProfile)
	}
	return nil
}

// runFleet is the -peers path: N VMs of the same workload migrate
// concurrently over one shared backbone link, on one deterministic clock.
func runFleet(o options, prof javmm.Profile, mode javmm.Mode, out io.Writer) error {
	if len(o.Faults) > 0 || o.Resume {
		return fmt.Errorf("-peers does not compose with -fault or -resume (single-VM features)")
	}
	profiles := make([]javmm.Profile, o.Peers)
	for i := range profiles {
		profiles[i] = prof
	}
	fmt.Fprintf(out, "migrating %d %s VMs (%d MiB each, mode %s) over one shared %.0f MB/s link, engines staggered %v...\n",
		o.Peers, prof.Name, o.MemMiB, mode, float64(o.Bandwidth)/1e6, o.Stagger)
	// The full observability plane rides along whenever any of its surfaces
	// is asked for: the merged trace, the metrics page, the live progress
	// stream or SLA pricing.
	fopts := javmm.FleetOptions{
		Mode:      mode,
		Profiles:  profiles,
		Seed:      o.Seed,
		MemBytes:  o.MemMiB << 20,
		Bandwidth: o.Bandwidth,
		Warmup:    o.Warmup,
		Stagger:   o.Stagger,
		Engine:    javmm.EngineConfig{Compress: o.Compress},
	}
	fopts.Collect = o.TracePath != "" || o.Metrics || o.MetricsOut != "" || o.Progress || o.SLA || o.SLAOut != ""
	if o.Progress {
		fopts.OnProgress = func(vm string, p javmm.Progress) { printProgress(out, vm, p) }
	}
	if o.SLA || o.SLAOut != "" {
		m := javmm.DefaultSLA()
		fopts.SLA = &m
	}
	res, err := javmm.MigrateMany(fopts)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "\n%-14s %-10s %-10s %-10s %-12s %-12s %-10s\n",
		"vm", "start", "end", "total", "downtime", "wl-downtime", "traffic")
	var firstErr error
	for i := range res.VMs {
		vm := &res.VMs[i]
		if vm.Err != nil {
			fmt.Fprintf(out, "%-14s FAILED: %v\n", vm.Name, vm.Err)
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", vm.Name, vm.Err)
			}
			continue
		}
		fmt.Fprintf(out, "%-14s %-10v %-10v %-10v %-12v %-12v %-10s\n",
			vm.Name,
			vm.StartAt.Round(time.Millisecond),
			vm.EndAt.Round(time.Millisecond),
			vm.Report.TotalTime.Round(time.Millisecond),
			vm.Report.VMDowntime.Round(time.Millisecond),
			vm.WorkloadDowntime.Round(time.Millisecond),
			mb(vm.Report.TotalBytes()))
		if vm.VerifyErr != nil && firstErr == nil {
			firstErr = fmt.Errorf("%s: destination verification FAILED: %w", vm.Name, vm.VerifyErr)
		}
	}
	fmt.Fprintf(out, "\nfleet makespan %v (first engine start to last completion)\n",
		res.MakeSpan.Round(time.Millisecond))
	for _, lu := range res.Fabric.Links {
		fmt.Fprintf(out, "  link %-10s %s in %d transfers, busy %v, peak %d concurrent, utilization %.1f%%\n",
			lu.Name, mb(lu.BytesSent), lu.Transfers, lu.Busy.Round(time.Millisecond),
			lu.MaxConcurrent, lu.Utilization*100)
	}
	for _, fu := range res.Fabric.Flows {
		if fu.Queueing > 0 || fu.Stall > 0 {
			fmt.Fprintf(out, "  flow %-14s queued %v (stalled %v) behind fair share\n",
				fu.Name, fu.Queueing.Round(time.Millisecond), fu.Stall.Round(time.Millisecond))
		}
	}

	if f := res.SLA; f != nil {
		if err := f.Reconcile(); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nSLA cost (default model):\n")
		fmt.Fprintf(out, "  %-14s %-10s %-10s %-12s %-8s %s\n",
			"vm", "downtime", "dip", "lost-ops", "dip-sec", "total")
		for _, c := range f.PerVM {
			fmt.Fprintf(out, "  %-14s %-10.4f %-10.4f %-12.0f %-8d %.4f\n",
				c.VM, c.DowntimeCost, c.DipCost, c.LostOps, c.DipSeconds, c.Total)
		}
		fmt.Fprintf(out, "  %-14s %-10.4f %-10.4f %-12.0f %-8s %.4f (worst: %s)\n",
			"fleet", f.DowntimeCost, f.DipCost, f.LostOps, "", f.Total, f.WorstVM)
		if o.SLAOut != "" {
			if err := writeFleetSLA(o.SLAOut, *f); err != nil {
				return err
			}
			fmt.Fprintf(out, "  SLA cost JSON       %s\n", o.SLAOut)
		}
	}

	if coll := res.Obs; coll != nil {
		if o.TracePath != "" {
			if err := writeFleetTrace(o.TracePath, o.TraceFormat, coll); err != nil {
				return err
			}
			fmt.Fprintf(out, "  merged trace        %s (%d lanes, %s)\n",
				o.TracePath, len(coll.Lanes()), o.TraceFormat)
		}
		if o.MetricsOut != "" {
			if err := writeFleetSnapshot(o.MetricsOut, coll.Snapshot()); err != nil {
				return err
			}
			fmt.Fprintf(out, "  fleet snapshot      %s\n", o.MetricsOut)
		}
		if o.Metrics {
			fmt.Fprintf(out, "\nfleet metrics (Prometheus, labeled):\n")
			if err := coll.WritePrometheus(out); err != nil {
				return err
			}
		}
	} else if m := res.Metrics; m != nil {
		snap := m.Snapshot()
		if o.MetricsOut != "" {
			if err := writeMetrics(o.MetricsOut, snap); err != nil {
				return err
			}
			fmt.Fprintf(out, "  metrics snapshot    %s\n", o.MetricsOut)
		}
		if o.Metrics {
			printMetrics(out, snap)
		}
	}
	return firstErr
}

// runPlan is the -plan path: orchestrate a batch migration plan against a
// declared cluster (DESIGN.md §17). It is also the chaos runner's replay
// surface — a FleetViolation.Repro() argument list lands here, -fault rules
// included.
func runPlan(o options, mode javmm.Mode, out io.Writer) error {
	if o.Cluster == "" {
		return fmt.Errorf("-plan needs -cluster (the topology the plan compiles against)")
	}
	if o.Plan == "" {
		return fmt.Errorf("-cluster needs -plan (the batch plan to execute)")
	}
	cluster, err := javmm.ParseCluster(o.Cluster)
	if err != nil {
		return err
	}
	plan, err := javmm.ParseMigrationPlan(o.Plan)
	if err != nil {
		return err
	}
	ord, err := javmm.ParseOrdering(o.Ordering)
	if err != nil {
		return err
	}
	engine := javmm.EngineConfig{Compress: o.Compress}
	engine.Recovery.Seed = o.FaultSeed
	engine.Recovery.EnableResume = o.Resume
	engine.Integrity.Disable = !o.Verify
	oo := javmm.OrchestratorOptions{
		Cluster:  cluster,
		Plan:     plan,
		Mode:     mode,
		Seed:     o.Seed,
		Ordering: ord,
		Admission: javmm.AdmissionPolicy{
			MaxPerLink: o.MaxPerLink,
			MaxPerHost: o.MaxPerHost,
		},
		Warmup: o.Warmup,
		Engine: engine,
	}
	if o.Retry {
		oo.Retry = javmm.RetryPolicy{
			Enabled:           true,
			MaxAttempts:       o.MaxAttempts,
			MoveDeadline:      o.MoveDeadline,
			PlanDeadline:      o.PlanDeadline,
			DisableRelocation: !o.Relocate,
			Seed:              o.FaultSeed,
		}
		if o.Breaker != "" {
			bp, err := javmm.ParseBreakerPolicy(o.Breaker)
			if err != nil {
				return err
			}
			oo.Retry.Breaker = bp
		}
	} else if o.HealOut != "" {
		return fmt.Errorf("-heal-out needs -retry (the healing summary records the self-healing run)")
	}
	if len(o.Faults) > 0 {
		fp, err := javmm.ParseFaultPlan(o.Faults)
		if err != nil {
			return err
		}
		oo.FaultPlan = fp
	}
	if o.SLA || o.SLAOut != "" {
		m := javmm.DefaultSLA()
		oo.SLA = &m
	}
	oo.Collect = o.TracePath != "" || o.Metrics || o.MetricsOut != ""
	if o.Progress {
		oo.OnProgress = func(vm string, p javmm.Progress) { printProgress(out, vm, p) }
	}

	fmt.Fprintf(out, "orchestrating %q on %d hosts / %d VMs (mode %s, ordering %s, caps link=%d host=%d, warmup %v)...\n",
		o.Plan, len(cluster.Hosts), len(cluster.VMs), mode, ord, o.MaxPerLink, o.MaxPerHost, o.Warmup)
	res, err := javmm.Orchestrate(oo)
	if err != nil {
		return err
	}
	if len(res.Moves) == 0 {
		fmt.Fprintf(out, "plan compiled to no moves: nothing to do\n")
		return nil
	}

	fmt.Fprintf(out, "\n%-10s %-12s %-10s %-8s %-7s %-10s %-12s %-10s %s\n",
		"vm", "route", "launched", "waited", "defer", "total", "wl-downtime", "traffic", "status")
	var firstErr error
	for i := range res.Moves {
		m := &res.Moves[i]
		status := "OK"
		switch {
		case m.QuietLaunch:
			status = "OK (quiet)"
		case m.Forced:
			status = "OK (forced)"
		}
		if m.Err != nil {
			status = fmt.Sprintf("ABORTED: %v", m.Err)
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", m.Name, m.Err)
			}
		} else if m.VerifyErr != nil {
			status = fmt.Sprintf("VERIFY FAILED: %v", m.VerifyErr)
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: destination verification FAILED: %w", m.Name, m.VerifyErr)
			}
		}
		total := time.Duration(0)
		var traffic uint64
		if m.Report != nil {
			total = m.Report.TotalTime
			traffic = m.Report.TotalBytes()
		}
		if o.Retry {
			status = fmt.Sprintf("%s [%s, %d attempt(s)]", status, m.Outcome, len(m.Attempts))
		}
		fmt.Fprintf(out, "%-10s %-12s %-10v %-8v %-7d %-10v %-12v %-10s %s\n",
			m.Name, m.From+"->"+m.To,
			m.LaunchedAt.Round(time.Millisecond),
			(m.LaunchedAt - m.EligibleAt).Round(time.Millisecond),
			m.Deferrals,
			total.Round(time.Millisecond),
			m.WorkloadDowntime.Round(time.Millisecond),
			mb(traffic), status)
	}

	if o.Retry {
		hs := res.Healing()
		fmt.Fprintf(out, "\nhealing: %d retries, %d relocations, %d breaker opens, backoff %v, token reuse saved %s\n",
			hs.Retries, hs.Relocations, hs.BreakerOpens,
			hs.BackoffTotal.Round(time.Millisecond), mb(hs.TokenSavedBytes))
		for _, mh := range hs.Moves {
			if mh.Attempts > 1 || mh.Relocations > 0 {
				fmt.Fprintf(out, "  %-10s %s: %d attempts, %d relocations, refetched %d pages\n",
					mh.VM, mh.Outcome, mh.Attempts, mh.Relocations, mh.RefetchPages)
			}
		}
		if o.HealOut != "" {
			if err := hs.WriteJSON(o.HealOut); err != nil {
				return err
			}
			fmt.Fprintf(out, "  healing summary     %s\n", o.HealOut)
		}
	}

	// Aborted moves resume from their tokens with the fault plane detached,
	// exactly like an operator retry after the outage.
	if o.Resume {
		for i := range res.Moves {
			m := &res.Moves[i]
			if m.Err == nil {
				continue
			}
			rep, rerr := res.ResumeAborted(i)
			if rerr != nil {
				fmt.Fprintf(out, "  resume %-10s FAILED: %v\n", m.Name, rerr)
				continue
			}
			fmt.Fprintf(out, "  resume %-10s OK: %d pages in %v (faults detached, image verified)\n",
				m.Name, rep.TotalPagesSent, rep.TotalTime.Round(time.Millisecond))
			if firstErr != nil && firstErr.Error() == fmt.Sprintf("%s: %v", m.Name, m.Err) {
				firstErr = nil
			}
		}
	}

	fmt.Fprintf(out, "\nplan makespan %v (first launch to last completion)\n",
		res.MakeSpan.Round(time.Millisecond))
	if ord != javmm.OrderNaive {
		if err := javmm.VerifyAdmission(res.Moves, oo.Admission); err != nil {
			return fmt.Errorf("admission over-commit: %w", err)
		}
		fmt.Fprintf(out, "admission verified: caps (link=%d host=%d) never over-committed\n",
			o.MaxPerLink, o.MaxPerHost)
	}
	for _, lu := range res.Fabric.Links {
		fmt.Fprintf(out, "  link %-10s %s in %d transfers, busy %v, peak %d concurrent, utilization %.1f%%\n",
			lu.Name, mb(lu.BytesSent), lu.Transfers, lu.Busy.Round(time.Millisecond),
			lu.MaxConcurrent, lu.Utilization*100)
	}

	if f := res.SLA; f != nil {
		if err := f.Reconcile(); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nSLA cost (default model): fleet %.4f (downtime %.4f + dip %.4f, worst: %s)\n",
			f.Total, f.DowntimeCost, f.DipCost, f.WorstVM)
		if o.SLAOut != "" {
			if err := writeFleetSLA(o.SLAOut, *f); err != nil {
				return err
			}
			fmt.Fprintf(out, "  SLA cost JSON       %s\n", o.SLAOut)
		}
	}
	if coll := res.Obs; coll != nil {
		if o.TracePath != "" {
			if err := writeFleetTrace(o.TracePath, o.TraceFormat, coll); err != nil {
				return err
			}
			fmt.Fprintf(out, "  merged trace        %s (%d lanes, %s)\n",
				o.TracePath, len(coll.Lanes()), o.TraceFormat)
		}
		if o.MetricsOut != "" {
			if err := writeFleetSnapshot(o.MetricsOut, coll.Snapshot()); err != nil {
				return err
			}
			fmt.Fprintf(out, "  fleet snapshot      %s\n", o.MetricsOut)
		}
		if o.Metrics {
			fmt.Fprintf(out, "\nfleet metrics (Prometheus, labeled):\n")
			if err := coll.WritePrometheus(out); err != nil {
				return err
			}
		}
	}
	return firstErr
}

// printProgress renders one live progress point as a fleet status line.
// Emission is in virtual-time order across all engines, so the stream reads
// as the fleet's merged timeline.
func printProgress(out io.Writer, vm string, p javmm.Progress) {
	line := fmt.Sprintf("[%9v] %-14s %-13s iter=%d sent=%s",
		p.At.Round(time.Millisecond), vm, p.Phase, p.Iteration, mb(p.BytesSent))
	if p.BytesRemaining > 0 {
		line += fmt.Sprintf(" remaining=%s", mb(p.BytesRemaining))
		switch {
		case p.Converging:
			line += fmt.Sprintf(" eta=%v", p.ETA.Round(time.Millisecond))
		case p.TransferRate > 0:
			// An observed transfer rate that still cannot outrun the dirty
			// rate: pre-copy will not converge at these rates.
			line += " NOT CONVERGING"
		}
	}
	fmt.Fprintln(out, line)
}

// writeFleetTrace exports the merged fleet timeline: chrome renders per-VM
// process lanes plus the fabric lane; jsonl flattens the same events into one
// time-ordered stream with lane-prefixed tracks.
func writeFleetTrace(path, format string, coll *javmm.FleetCollector) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if format == "jsonl" {
		err = javmm.WriteTraceJSONL(f, coll.MergedEvents())
	} else {
		err = coll.WriteChromeTrace(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeFleetSnapshot exports the per-VM + fleet metrics snapshot
// (javmm-analyze -fleet ingests it).
func writeFleetSnapshot(path string, s javmm.FleetSnapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = javmm.WriteFleetSnapshotJSON(f, s)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeFleetSLA exports the fleet SLA cost as JSON.
func writeFleetSLA(path string, f javmm.FleetSLACost) error {
	w, err := os.Create(path)
	if err != nil {
		return err
	}
	err = javmm.WriteFleetSLAJSON(w, f)
	if cerr := w.Close(); err == nil {
		err = cerr
	}
	return err
}

// printStageProfile renders the real-clock per-stage account: where the
// simulator itself spent wall time and heap allocation, self-attributed (a
// stage's row excludes the stages it called into).
func printStageProfile(out io.Writer, stages *javmm.StageProfiler) {
	snap := stages.Snapshot()
	if len(snap) == 0 {
		fmt.Fprintf(out, "\nstage profile: no stages recorded\n")
		return
	}
	var totalSelf int64
	for _, s := range snap {
		totalSelf += s.SelfNs
	}
	fmt.Fprintf(out, "\nstage profile (real clock, self-attributed):\n")
	fmt.Fprintf(out, "  %-22s %12s %12s %12s %12s %7s\n",
		"stage", "calls", "self", "total", "self-alloc", "share")
	for _, s := range snap {
		share := 0.0
		if totalSelf > 0 {
			share = float64(s.SelfNs) / float64(totalSelf) * 100
		}
		fmt.Fprintf(out, "  %-22s %12d %12v %12v %12s %6.1f%%\n",
			s.Stage, s.Calls,
			time.Duration(s.SelfNs).Round(time.Microsecond),
			time.Duration(s.TotalNs).Round(time.Microsecond),
			mb(s.SelfAllocBytes), share)
	}
}

// writeMetrics exports the snapshot as JSON (readable back with
// javmm.ReadMetricsJSON, e.g. by javmm-analyze).
func writeMetrics(path string, s javmm.MetricsSnapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = javmm.WriteMetricsJSON(f, s)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeTrace exports the recorded events in the chosen format.
func writeTrace(path, format string, events []javmm.Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if format == "jsonl" {
		err = javmm.WriteTraceJSONL(f, events)
	} else {
		err = javmm.WriteTraceChrome(f, events)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// printMetrics renders the snapshot as a summary table: counters, then
// gauges, then histograms, each name-sorted.
func printMetrics(out io.Writer, s javmm.MetricsSnapshot) {
	fmt.Fprintf(out, "\nmetrics at %v:\n", s.At.Round(time.Millisecond))
	for _, c := range s.Counters {
		fmt.Fprintf(out, "  %-32s %d\n", c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		fmt.Fprintf(out, "  %-32s %.3g (time-weighted mean %.3g)\n", g.Name, g.Value, g.TimeWeightedMean)
	}
	for _, h := range s.Histograms {
		fmt.Fprintf(out, "  %-32s n=%d mean=%.3g min=%.3g max=%.3g\n", h.Name, h.Count, h.Mean, h.Min, h.Max)
	}
}

// printRecovery renders the robustness layer's account of the run: injected
// faults, retried stages, and any mid-flight degradation.
func printRecovery(out io.Writer, rec *javmm.RecoveryStats, inj *javmm.FaultInjector) {
	if inj != nil {
		if ev := inj.Events(); len(ev) > 0 {
			fmt.Fprintf(out, "  faults injected     %d:", len(ev))
			for _, e := range ev {
				fmt.Fprintf(out, " %s@%v", e.Site, e.At.Round(time.Millisecond))
			}
			fmt.Fprintln(out)
		}
	}
	if n := len(rec.Retries); n > 0 {
		fmt.Fprintf(out, "  retries             %d (total backoff %v)\n",
			n, rec.BackoffTotal.Round(time.Millisecond))
		for _, r := range rec.Retries {
			fmt.Fprintf(out, "    %-14s attempt %d at %v, backed off %v: %s\n",
				r.Stage, r.Attempt, r.At.Round(time.Millisecond),
				r.Backoff.Round(time.Millisecond), r.Err)
		}
	}
	if d := rec.Degraded; d != nil {
		fmt.Fprintf(out, "  DEGRADED            %s -> %s at %v (%s)\n",
			d.From, d.To, d.At.Round(time.Millisecond), d.Reason)
	}
}

func mb(b uint64) string { return fmt.Sprintf("%.1f MB", float64(b)/1e6) }
