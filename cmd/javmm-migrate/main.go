// Command javmm-migrate live-migrates a simulated Java VM, the equivalent of
// the paper's added Xen management command (`xl migrate` with
// application-assistance, §3.3). It boots a VM running the chosen workload,
// warms it up, migrates it in the chosen mode and prints the migration
// report, optionally with the per-iteration breakdown.
//
// Usage:
//
//	javmm-migrate -workload derby -mode javmm -warmup 300s -v
//	javmm-migrate -workload scimark -mode xen -bandwidth 117000000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"javmm"
)

func main() {
	var (
		workloadName = flag.String("workload", "derby", "workload to run: "+strings.Join(javmm.WorkloadNames(), ", "))
		modeName     = flag.String("mode", "javmm", "migration mode: xen or javmm")
		memMiB       = flag.Uint64("mem", 2048, "VM memory in MiB")
		vcpus        = flag.Int("vcpus", 4, "virtual CPUs")
		bandwidth    = flag.Uint64("bandwidth", javmm.GigabitEthernet, "link payload bandwidth in bytes/sec")
		warmup       = flag.Duration("warmup", 300*time.Second, "virtual warmup before migration")
		youngMiB     = flag.Uint64("young", 0, "override max young generation in MiB (0 = workload default)")
		seed         = flag.Int64("seed", 1, "deterministic seed")
		compress     = flag.Bool("compress", false, "compress unskipped pages (§6 extension)")
		collector    = flag.String("collector", "parallel", "garbage collector: parallel or g1")
		verbose      = flag.Bool("v", false, "print per-iteration details")
	)
	flag.Parse()
	if err := run(*workloadName, *modeName, *collector, *memMiB, *vcpus, *bandwidth, *warmup, *youngMiB, *seed, *compress, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "javmm-migrate:", err)
		os.Exit(1)
	}
}

func run(workloadName, modeName, collector string, memMiB uint64, vcpus int, bandwidth uint64,
	warmup time.Duration, youngMiB uint64, seed int64, compress, verbose bool) error {

	prof, err := javmm.Workload(workloadName)
	if err != nil {
		return err
	}
	if youngMiB != 0 {
		prof.MaxYoungBytes = youngMiB << 20
		if prof.InitialYoungBytes > prof.MaxYoungBytes {
			prof.InitialYoungBytes = prof.MaxYoungBytes
		}
	}
	var mode javmm.Mode
	switch modeName {
	case "xen":
		mode = javmm.ModeXen
	case "javmm":
		mode = javmm.ModeJAVMM
	default:
		return fmt.Errorf("unknown mode %q (want xen or javmm)", modeName)
	}

	vm, err := javmm.BootVM(javmm.BootConfig{
		MemBytes:  memMiB << 20,
		VCPUs:     vcpus,
		Profile:   prof,
		Assisted:  mode == javmm.ModeJAVMM,
		Seed:      seed,
		Collector: collector,
	})
	if err != nil {
		return err
	}

	fmt.Printf("booted %s: %d MiB, %d vCPUs, workload %s (category %d)\n",
		vm.Dom.Name(), memMiB, vcpus, prof.Name, prof.Category)
	fmt.Printf("warming up for %v of virtual time...\n", warmup)
	vm.Driver.Run(warmup)
	if vm.Driver.Err != nil {
		return vm.Driver.Err
	}
	fmt.Printf("at migration: young gen %d MiB committed, old gen %d MiB used, %d GCs so far\n",
		vm.Heap.YoungCommitted()>>20, vm.Heap.OldUsed()>>20, len(vm.Heap.GCHistory()))

	engine := javmm.EngineConfig{Compress: compress}
	if verbose {
		fmt.Printf("\n%-5s %-10s %-10s %-12s %-12s %-12s\n",
			"iter", "start", "duration", "sent", "skip-dirty", "skip-bitmap")
		engine.OnIteration = func(it javmm.IterationStats) {
			mark := " "
			if it.Last {
				mark = "*"
			}
			fmt.Printf("%-4d%s %-10v %-10v %-12s %-12s %-12s\n",
				it.Index, mark,
				it.Start.Round(time.Millisecond),
				it.Duration.Round(time.Millisecond),
				mb(it.BytesOnWire),
				mb(it.PagesSkippedDirty*4096),
				mb(it.PagesSkippedBitmap*4096))
		}
	}
	res, err := javmm.Migrate(vm, javmm.MigrateOptions{
		Mode:      mode,
		Bandwidth: bandwidth,
		Engine:    engine,
	})
	if err != nil {
		return err
	}

	fmt.Printf("\nmigration complete (%s):\n", mode)
	fmt.Printf("  total time          %v\n", res.TotalTime.Round(time.Millisecond))
	fmt.Printf("  total traffic       %.2f GB (%d pages)\n", float64(res.TotalBytes())/1e9, res.TotalPagesSent)
	fmt.Printf("  iterations          %d (%d live + stop-and-copy)\n", len(res.Iterations), res.LiveIterations())
	fmt.Printf("  VM downtime         %v\n", res.VMDowntime.Round(time.Millisecond))
	fmt.Printf("  workload downtime   %v\n", res.WorkloadDowntime.Round(time.Millisecond))
	if mode == javmm.ModeJAVMM {
		fmt.Printf("  enforced GC         %v\n", res.EnforcedGC.Round(time.Millisecond))
		fmt.Printf("  final bitmap update %v\n", res.FinalUpdate.Round(time.Microsecond))
	}
	fmt.Printf("  daemon CPU (model)  %v\n", res.CPUTime.Round(time.Millisecond))
	if res.VerifyErr != nil {
		return fmt.Errorf("destination verification FAILED: %w", res.VerifyErr)
	}
	fmt.Printf("  verification        OK (destination pages match)\n")
	return nil
}

func mb(b uint64) string { return fmt.Sprintf("%.1f MB", float64(b)/1e6) }
