package main

import (
	"fmt"
	"runtime/metrics"
	"sort"
	"time"

	"javmm"
	"javmm/internal/obs/perf"
)

// scenarioSpec names one cell of the end-to-end matrix.
type scenarioSpec struct {
	workload string
	mode     string // xen | javmm | post-copy | hybrid
	codec    string // raw | compress | delta
}

func (s scenarioSpec) name() string {
	return fmt.Sprintf("e2e/%s/%s/%s", s.workload, s.mode, s.codec)
}

// scenarioMatrix is the fixed matrix every snapshot covers: all four modes
// over two workloads with opposite heap profiles (derby: huge young
// generation, the paper's best case; crypto: small young generation, the
// worst), plus the compression and delta codec chains on the flagship
// javmm/derby cell. Quick mode keeps one cell per distinct engine path so
// smoke tests stay fast.
func scenarioMatrix(quick bool) []scenarioSpec {
	if quick {
		return []scenarioSpec{
			{"derby", "xen", "raw"},
			{"derby", "javmm", "raw"},
			{"derby", "javmm", "compress"},
		}
	}
	var specs []scenarioSpec
	for _, mode := range []string{"xen", "javmm", "post-copy", "hybrid"} {
		for _, wl := range []string{"derby", "crypto"} {
			specs = append(specs, scenarioSpec{wl, mode, "raw"})
		}
	}
	specs = append(specs,
		scenarioSpec{"derby", "javmm", "compress"},
		scenarioSpec{"derby", "javmm", "delta"},
	)
	return specs
}

// fleetSpec names one multi-VM contention cell: N VMs of one workload
// migrating concurrently over a shared gigabit backbone. With collect set the
// full fleet observability plane rides along (per-VM tracers, metrics,
// ledgers, the fabric lane, progress capture, SLA pricing) — the cell's
// timing delta against its bare twin is the obs plane's overhead.
type fleetSpec struct {
	workload string
	mode     string
	vms      int
	collect  bool
}

func (s fleetSpec) name(vm int) string {
	kind := "fleet"
	if s.collect {
		kind = "fleetobs"
	}
	return fmt.Sprintf("%s/%s/%s/%dvm/vm%d", kind, s.workload, s.mode, s.vms, vm)
}

// fleetMatrix is the contention coverage: the flagship javmm/derby cell at
// the acceptance scale of four VMs on one link, bare and with the full obs
// plane attached (the fleet-obs-overhead pair). Quick mode halves the fleet.
// The xen fleet is deliberately absent — vanilla pre-copy under 4-way
// contention runs minutes of virtual time per repetition, and X15 already
// covers its shape.
func fleetMatrix(quick bool) []fleetSpec {
	if quick {
		return []fleetSpec{
			{"derby", "javmm", 2, false},
			{"derby", "javmm", 2, true},
		}
	}
	return []fleetSpec{
		{"derby", "javmm", 4, false},
		{"derby", "javmm", 4, true},
	}
}

// orchSpec names one orchestrator cell: an "evacuate host src" batch plan
// executed under one launch ordering. The naive/cycle-aware pair prices the
// scheduler itself — same cluster, same plan, same seed, the only delta is
// the launch policy (and the deterministic blocks it produces).
type orchSpec struct {
	ordering javmm.Ordering
	vms      int
}

func (s orchSpec) name(vm int) string {
	return fmt.Sprintf("orch/evacuate/%s/%dvm/vm%d", s.ordering, s.vms, vm)
}

// orchMatrix is the orchestrator coverage: the evacuation plan at the
// acceptance scale of four VMs, naive vs cycle-aware. Quick mode halves the
// fleet.
func orchMatrix(quick bool) []orchSpec {
	n := 4
	if quick {
		n = 2
	}
	return []orchSpec{
		{javmm.OrderNaive, n},
		{javmm.OrderCycleAware, n},
	}
}

// orchCluster is the fixed topology the orchestrator cells evacuate: n phased
// mpeg VMs on one source, two destinations, the default gigabit backbone.
func orchCluster(n int) *javmm.Cluster {
	c := &javmm.Cluster{Hosts: []javmm.HostSpec{
		{Name: "src", RAMBytes: 64 << 30},
		{Name: "d1", RAMBytes: 64 << 30},
		{Name: "d2", RAMBytes: 64 << 30},
	}}
	for i := 0; i < n; i++ {
		c.VMs = append(c.VMs, javmm.VMSpec{
			Name: fmt.Sprintf("vm%d", i), Host: "src",
			Workload: "mpeg", MemBytes: 512 << 20,
			Cycle: javmm.CycleSpec{
				Period: 30 * time.Second, QuietStart: 10 * time.Second,
				QuietLen: 15 * time.Second, QuietFactor: 0.1,
				Phase: time.Duration(i%2) * 15 * time.Second,
			},
		})
	}
	return c
}

// runOrchScenario measures one orchestrator cell under the fleet protocol:
// an accounting run pins each move's deterministic block, then o.Runs
// uninstrumented timing runs must reproduce every block exactly while their
// wall-clock medians become the shared timing block.
func runOrchScenario(spec orchSpec, o options) ([]perf.Scenario, error) {
	prof := javmm.NewStageProfiler()
	dets, awall, _, err := orchOnce(spec, o, prof)
	if err != nil {
		return nil, err
	}
	var stages []perf.StageShare
	for _, st := range prof.Snapshot() {
		share := 0.0
		if awall > 0 {
			share = float64(st.SelfNs) / float64(awall)
		}
		stages = append(stages, perf.StageShare{
			Stage:      st.Stage,
			Calls:      st.Calls,
			SelfNs:     st.SelfNs,
			TotalNs:    st.TotalNs,
			AllocBytes: st.SelfAllocBytes,
			Share:      share,
		})
	}
	scs := make([]perf.Scenario, len(dets))
	for i, det := range dets {
		scs[i] = perf.Scenario{Name: spec.name(i), Deterministic: det, Stages: stages}
	}

	ns := make([]int64, 0, o.Runs)
	allocB := make([]int64, 0, o.Runs)
	allocN := make([]int64, 0, o.Runs)
	for r := 0; r < o.Runs; r++ {
		tdets, wall, ad, err := orchOnce(spec, o, nil)
		if err != nil {
			return nil, fmt.Errorf("timing run %d: %w", r+1, err)
		}
		for i := range dets {
			if tdets[i] != dets[i] {
				return nil, fmt.Errorf("timing run %d vm%d diverged from accounting run:\naccounting: %+v\ntiming:     %+v",
					r+1, i, dets[i], tdets[i])
			}
		}
		ns = append(ns, int64(wall))
		allocB = append(allocB, ad.bytes)
		allocN = append(allocN, ad.objects)
	}
	timing := perf.Timing{
		Runs:            o.Runs,
		NsPerOp:         median(ns),
		AllocBytesPerOp: median(allocB),
		AllocsPerOp:     median(allocN),
	}
	for i := range scs {
		t := timing
		if t.NsPerOp > 0 && scs[i].Deterministic.PagesSent > 0 {
			t.PagesPerSec = float64(scs[i].Deterministic.PagesSent) / (float64(t.NsPerOp) / 1e9)
		}
		scs[i].Timing = t
	}
	return scs, nil
}

// orchOnce executes the evacuation plan once and projects each move's
// outcome onto the deterministic block.
func orchOnce(spec orchSpec, o options, prof *javmm.StageProfiler) ([]perf.Deterministic, time.Duration, allocDelta, error) {
	plan, err := javmm.ParseMigrationPlan("evacuate host src")
	if err != nil {
		return nil, 0, allocDelta{}, err
	}
	oo := javmm.OrchestratorOptions{
		Cluster:   orchCluster(spec.vms),
		Plan:      plan,
		Mode:      javmm.ModeJAVMM,
		Seed:      o.Seed,
		Ordering:  spec.ordering,
		Admission: javmm.AdmissionPolicy{MaxPerLink: 2, MaxPerHost: 2},
		Warmup:    o.Warmup,
		Engine:    javmm.EngineConfig{Perf: prof},
	}
	before := readAllocs()
	start := time.Now()
	res, err := javmm.Orchestrate(oo)
	wall := time.Since(start)
	delta := readAllocs().sub(before)
	if err != nil {
		return nil, 0, allocDelta{}, err
	}
	dets := make([]perf.Deterministic, len(res.Moves))
	for i := range res.Moves {
		m := &res.Moves[i]
		if m.Err != nil {
			return nil, 0, allocDelta{}, fmt.Errorf("%s: %w", m.Name, m.Err)
		}
		if m.VerifyErr != nil {
			return nil, 0, allocDelta{}, fmt.Errorf("%s: destination verification failed: %w", m.Name, m.VerifyErr)
		}
		det := javmm.BenchDeterministic(&javmm.Result{
			Report:           m.Report,
			WorkloadDowntime: m.WorkloadDowntime,
			EnforcedGC:       m.EnforcedGC,
		})
		det.Workload = "mpeg"
		det.Codec = "raw"
		dets[i] = det
	}
	return dets, wall, delta, nil
}

// healSpec names one self-healing cell: a 2-VM "evacuate host src" plan
// executed with the retry layer armed. The clean/relocate pair prices the
// healing machinery itself — clean measures the layer's overhead on an
// unfaulted run, relocate measures a full heal (permanent failure into a
// crashed destination, dead-host exclusion, re-placement, token
// degradation to a first copy on the survivor).
type healSpec struct {
	arm string // clean | relocate
}

func (s healSpec) name(vm int) string {
	return fmt.Sprintf("heal/evacuate/%s/vm%d", s.arm, vm)
}

// healMatrix is the self-healing coverage. Quick mode keeps only the
// relocate cell — the one that exercises every healing code path.
func healMatrix(quick bool) []healSpec {
	if quick {
		return []healSpec{{"relocate"}}
	}
	return []healSpec{{"clean"}, {"relocate"}}
}

// healWorkloads maps the heal cells' move index to its workload (the same
// two-VM shape X17 uses).
var healWorkloads = []string{"mpeg", "compress"}

// healCluster is the fixed topology the heal cells evacuate: two VMs on one
// source, two destinations, the synthesized gigabit backbone.
func healCluster() *javmm.Cluster {
	c := &javmm.Cluster{Hosts: []javmm.HostSpec{
		{Name: "src", RAMBytes: 64 << 30},
		{Name: "d1", RAMBytes: 64 << 30},
		{Name: "d2", RAMBytes: 64 << 30},
	}}
	for i, wl := range healWorkloads {
		c.VMs = append(c.VMs, javmm.VMSpec{
			Name: fmt.Sprintf("vm%d", i), Host: "src",
			Workload: wl, MemBytes: 2 << 30,
		})
	}
	return c
}

// runHealScenario measures one self-healing cell under the fleet protocol:
// an accounting run pins each move's deterministic block (attempts,
// relocations and backoffs included — the healed schedule is part of what
// must replay), then o.Runs uninstrumented timing runs must reproduce every
// block exactly.
func runHealScenario(spec healSpec, o options) ([]perf.Scenario, error) {
	prof := javmm.NewStageProfiler()
	dets, awall, _, err := healOnce(spec, o, prof)
	if err != nil {
		return nil, err
	}
	var stages []perf.StageShare
	for _, st := range prof.Snapshot() {
		share := 0.0
		if awall > 0 {
			share = float64(st.SelfNs) / float64(awall)
		}
		stages = append(stages, perf.StageShare{
			Stage:      st.Stage,
			Calls:      st.Calls,
			SelfNs:     st.SelfNs,
			TotalNs:    st.TotalNs,
			AllocBytes: st.SelfAllocBytes,
			Share:      share,
		})
	}
	scs := make([]perf.Scenario, len(dets))
	for i, det := range dets {
		scs[i] = perf.Scenario{Name: spec.name(i), Deterministic: det, Stages: stages}
	}

	ns := make([]int64, 0, o.Runs)
	allocB := make([]int64, 0, o.Runs)
	allocN := make([]int64, 0, o.Runs)
	for r := 0; r < o.Runs; r++ {
		tdets, wall, ad, err := healOnce(spec, o, nil)
		if err != nil {
			return nil, fmt.Errorf("timing run %d: %w", r+1, err)
		}
		for i := range dets {
			if tdets[i] != dets[i] {
				return nil, fmt.Errorf("timing run %d vm%d diverged from accounting run:\naccounting: %+v\ntiming:     %+v",
					r+1, i, dets[i], tdets[i])
			}
		}
		ns = append(ns, int64(wall))
		allocB = append(allocB, ad.bytes)
		allocN = append(allocN, ad.objects)
	}
	timing := perf.Timing{
		Runs:            o.Runs,
		NsPerOp:         median(ns),
		AllocBytesPerOp: median(allocB),
		AllocsPerOp:     median(allocN),
	}
	for i := range scs {
		t := timing
		if t.NsPerOp > 0 && scs[i].Deterministic.PagesSent > 0 {
			t.PagesPerSec = float64(scs[i].Deterministic.PagesSent) / (float64(t.NsPerOp) / 1e9)
		}
		scs[i].Timing = t
	}
	return scs, nil
}

// healOnce executes the evacuation once under the cell's healing policy and
// projects each move's outcome onto the deterministic block. Every move must
// complete: the relocate cell's crashed destination is healed around, not
// tolerated as a failure.
func healOnce(spec healSpec, o options, prof *javmm.StageProfiler) ([]perf.Deterministic, time.Duration, allocDelta, error) {
	plan, err := javmm.ParseMigrationPlan("evacuate host src")
	if err != nil {
		return nil, 0, allocDelta{}, err
	}
	oo := javmm.OrchestratorOptions{
		Cluster:   healCluster(),
		Plan:      plan,
		Mode:      javmm.ModeJAVMM,
		Seed:      o.Seed,
		Ordering:  javmm.OrderAdmission,
		Admission: javmm.AdmissionPolicy{MaxPerLink: 1, MaxPerHost: 1},
		Warmup:    o.Warmup,
		Engine:    javmm.EngineConfig{Perf: prof},
		Retry:     javmm.RetryPolicy{Enabled: true, Seed: o.Seed},
	}
	if spec.arm == "relocate" {
		oo.FaultPlan = javmm.FaultPlan{
			{Site: javmm.FaultHostCrash, For: time.Hour, Host: "d1"},
		}
	}
	before := readAllocs()
	start := time.Now()
	res, err := javmm.Orchestrate(oo)
	wall := time.Since(start)
	delta := readAllocs().sub(before)
	if err != nil {
		return nil, 0, allocDelta{}, err
	}
	dets := make([]perf.Deterministic, len(res.Moves))
	for i := range res.Moves {
		m := &res.Moves[i]
		if m.Err != nil {
			return nil, 0, allocDelta{}, fmt.Errorf("%s: %w", m.Name, m.Err)
		}
		if m.VerifyErr != nil {
			return nil, 0, allocDelta{}, fmt.Errorf("%s: destination verification failed: %w", m.Name, m.VerifyErr)
		}
		det := javmm.BenchDeterministic(&javmm.Result{
			Report:           m.Report,
			WorkloadDowntime: m.WorkloadDowntime,
			EnforcedGC:       m.EnforcedGC,
		})
		det.Workload = healWorkloads[i%len(healWorkloads)]
		det.Codec = "raw"
		dets[i] = det
	}
	return dets, wall, delta, nil
}

// runFleetScenario measures one contention cell under the same protocol as
// runScenario: an accounting run (stage profiler attached) pins each VM's
// deterministic block, then o.Runs uninstrumented timing runs must reproduce
// every one of them exactly while their fleet wall-clock medians become the
// (shared) timing block. One scenario is emitted per VM so per-VM drift
// stays visible in the comparator. All engines share one profiler — stage
// calls never span a cooperative yield, so the stack stays consistent — and
// the resulting fleet-wide breakdown is attached to every VM's scenario,
// matching the shared timing.
func runFleetScenario(spec fleetSpec, o options) ([]perf.Scenario, error) {
	prof := javmm.NewStageProfiler()
	dets, awall, _, err := fleetOnce(spec, o, prof)
	if err != nil {
		return nil, err
	}
	var stages []perf.StageShare
	for _, st := range prof.Snapshot() {
		share := 0.0
		if awall > 0 {
			share = float64(st.SelfNs) / float64(awall)
		}
		stages = append(stages, perf.StageShare{
			Stage:      st.Stage,
			Calls:      st.Calls,
			SelfNs:     st.SelfNs,
			TotalNs:    st.TotalNs,
			AllocBytes: st.SelfAllocBytes,
			Share:      share,
		})
	}
	scs := make([]perf.Scenario, len(dets))
	for i, det := range dets {
		scs[i] = perf.Scenario{Name: spec.name(i), Deterministic: det, Stages: stages}
	}

	ns := make([]int64, 0, o.Runs)
	allocB := make([]int64, 0, o.Runs)
	allocN := make([]int64, 0, o.Runs)
	for r := 0; r < o.Runs; r++ {
		tdets, wall, ad, err := fleetOnce(spec, o, nil)
		if err != nil {
			return nil, fmt.Errorf("timing run %d: %w", r+1, err)
		}
		for i := range dets {
			if tdets[i] != dets[i] {
				return nil, fmt.Errorf("timing run %d vm%d diverged from accounting run:\naccounting: %+v\ntiming:     %+v",
					r+1, i, dets[i], tdets[i])
			}
		}
		ns = append(ns, int64(wall))
		allocB = append(allocB, ad.bytes)
		allocN = append(allocN, ad.objects)
	}
	// The fleet migrates as one unit, so every VM's scenario carries the
	// whole fleet's wall time and allocation; PagesPerSec is still per-VM.
	timing := perf.Timing{
		Runs:            o.Runs,
		NsPerOp:         median(ns),
		AllocBytesPerOp: median(allocB),
		AllocsPerOp:     median(allocN),
	}
	for i := range scs {
		t := timing
		if t.NsPerOp > 0 && scs[i].Deterministic.PagesSent > 0 {
			t.PagesPerSec = float64(scs[i].Deterministic.PagesSent) / (float64(t.NsPerOp) / 1e9)
		}
		scs[i].Timing = t
	}
	return scs, nil
}

// fleetOnce runs the whole fleet once and projects each VM's outcome onto
// the deterministic block. prof, when non-nil, is attached to every engine
// as EngineConfig.Perf (safe: the cooperative scheduler runs one process at
// a time and no instrumented stage advances the clock).
func fleetOnce(spec fleetSpec, o options, prof *javmm.StageProfiler) ([]perf.Deterministic, time.Duration, allocDelta, error) {
	mode, err := javmm.ParseMode(spec.mode)
	if err != nil {
		return nil, 0, allocDelta{}, err
	}
	wl, err := javmm.Workload(spec.workload)
	if err != nil {
		return nil, 0, allocDelta{}, err
	}
	profiles := make([]javmm.Profile, spec.vms)
	for i := range profiles {
		profiles[i] = wl
	}
	fopts := javmm.FleetOptions{
		Mode:     mode,
		Profiles: profiles,
		Seed:     o.Seed,
		MemBytes: o.MemMiB << 20,
		Warmup:   o.Warmup,
		Stagger:  500 * time.Millisecond,
		Engine:   javmm.EngineConfig{Perf: prof},
	}
	if spec.collect {
		// The full observability plane, priced: the cell measures what
		// tracing + metrics + ledgers + progress + SLA accounting cost.
		fopts.Collect = true
		m := javmm.DefaultSLA()
		fopts.SLA = &m
	}
	before := readAllocs()
	start := time.Now()
	res, err := javmm.MigrateMany(fopts)
	wall := time.Since(start)
	delta := readAllocs().sub(before)
	if err != nil {
		return nil, 0, allocDelta{}, err
	}
	dets := make([]perf.Deterministic, len(res.VMs))
	for i := range res.VMs {
		vm := &res.VMs[i]
		if vm.Err != nil {
			return nil, 0, allocDelta{}, fmt.Errorf("%s: %w", vm.Name, vm.Err)
		}
		if vm.VerifyErr != nil {
			return nil, 0, allocDelta{}, fmt.Errorf("%s: destination verification failed: %w", vm.Name, vm.VerifyErr)
		}
		det := javmm.BenchDeterministic(&javmm.Result{
			Report:           vm.Report,
			WorkloadDowntime: vm.WorkloadDowntime,
			EnforcedGC:       vm.EnforcedGC,
		})
		det.Workload = spec.workload
		det.Codec = "raw"
		dets[i] = det
	}
	return dets, wall, delta, nil
}

// runScenario measures one matrix cell: first an instrumented accounting run
// (stage profiler attached) that yields the deterministic block and the
// per-stage breakdown, then o.Runs uninstrumented timing runs whose medians
// become the timing block. Every timing run's deterministic block must equal
// the accounting run's — one half of that equation has a profiler attached,
// so the check asserts seed-determinism and profiler transparency at once.
func runScenario(spec scenarioSpec, o options) (perf.Scenario, error) {
	sc := perf.Scenario{Name: spec.name()}

	// Accounting run.
	prof := javmm.NewStageProfiler()
	res, wall, _, err := migrateOnce(spec, o, prof)
	if err != nil {
		return sc, err
	}
	det := javmm.BenchDeterministic(res)
	det.Workload = spec.workload
	det.Codec = spec.codec
	sc.Deterministic = det
	for _, st := range prof.Snapshot() {
		share := 0.0
		if wall > 0 {
			share = float64(st.SelfNs) / float64(wall)
		}
		sc.Stages = append(sc.Stages, perf.StageShare{
			Stage:      st.Stage,
			Calls:      st.Calls,
			SelfNs:     st.SelfNs,
			TotalNs:    st.TotalNs,
			AllocBytes: st.SelfAllocBytes,
			Share:      share,
		})
	}

	// Timing runs, no instrumentation attached.
	ns := make([]int64, 0, o.Runs)
	allocB := make([]int64, 0, o.Runs)
	allocN := make([]int64, 0, o.Runs)
	for i := 0; i < o.Runs; i++ {
		tres, twall, ad, err := migrateOnce(spec, o, nil)
		if err != nil {
			return sc, fmt.Errorf("timing run %d: %w", i+1, err)
		}
		tdet := javmm.BenchDeterministic(tres)
		tdet.Workload = spec.workload
		tdet.Codec = spec.codec
		if tdet != det {
			return sc, fmt.Errorf("timing run %d diverged from accounting run:\naccounting: %+v\ntiming:     %+v",
				i+1, det, tdet)
		}
		ns = append(ns, int64(twall))
		allocB = append(allocB, ad.bytes)
		allocN = append(allocN, ad.objects)
	}
	sc.Timing = perf.Timing{
		Runs:            o.Runs,
		NsPerOp:         median(ns),
		AllocBytesPerOp: median(allocB),
		AllocsPerOp:     median(allocN),
	}
	if n := median(ns); n > 0 && det.PagesSent > 0 {
		sc.Timing.PagesPerSec = float64(det.PagesSent) / (float64(n) / 1e9)
	}
	return sc, nil
}

// migrateOnce boots a fresh VM for the cell, warms it up, and migrates it,
// measuring only the Migrate call itself (wall clock plus heap-allocation
// deltas from runtime/metrics). prof, when non-nil, is attached as
// EngineConfig.Perf.
func migrateOnce(spec scenarioSpec, o options, prof *javmm.StageProfiler) (*javmm.Result, time.Duration, allocDelta, error) {
	mode, err := javmm.ParseMode(spec.mode)
	if err != nil {
		return nil, 0, allocDelta{}, err
	}
	wl, err := javmm.Workload(spec.workload)
	if err != nil {
		return nil, 0, allocDelta{}, err
	}
	vm, err := javmm.BootVM(javmm.BootConfig{
		MemBytes: o.MemMiB << 20,
		VCPUs:    4,
		Profile:  wl,
		Assisted: mode == javmm.ModeJAVMM,
		Seed:     o.Seed,
	})
	if err != nil {
		return nil, 0, allocDelta{}, err
	}
	vm.Driver.Run(o.Warmup)
	if vm.Driver.Err != nil {
		return nil, 0, allocDelta{}, vm.Driver.Err
	}

	engine := javmm.EngineConfig{Perf: prof}
	switch spec.codec {
	case "raw":
	case "compress":
		engine.Compress = true
	case "delta":
		engine.Compress = true
		engine.DeltaCompression = true
	default:
		return nil, 0, allocDelta{}, fmt.Errorf("unknown codec %q", spec.codec)
	}

	before := readAllocs()
	start := time.Now()
	res, err := javmm.Migrate(vm, javmm.MigrateOptions{Mode: mode, Engine: engine})
	wall := time.Since(start)
	delta := readAllocs().sub(before)
	if err != nil {
		return nil, 0, allocDelta{}, err
	}
	if res.VerifyErr != nil {
		return nil, 0, allocDelta{}, fmt.Errorf("destination verification failed: %w", res.VerifyErr)
	}
	return res, wall, delta, nil
}

// allocDelta is a heap-allocation reading (monotonic totals or a difference
// of two readings) from runtime/metrics.
type allocDelta struct {
	bytes   int64
	objects int64
}

var allocSamples = []metrics.Sample{
	{Name: "/gc/heap/allocs:bytes"},
	{Name: "/gc/heap/allocs:objects"},
}

// readAllocs samples the monotonic heap-allocation counters. These only grow,
// so a before/after difference is valid across intervening GCs.
func readAllocs() allocDelta {
	metrics.Read(allocSamples)
	return allocDelta{
		bytes:   int64(allocSamples[0].Value.Uint64()),
		objects: int64(allocSamples[1].Value.Uint64()),
	}
}

func (a allocDelta) sub(b allocDelta) allocDelta {
	return allocDelta{bytes: a.bytes - b.bytes, objects: a.objects - b.objects}
}

// median returns the middle value of xs (the lower of the two middles for
// even lengths); 0 for an empty slice.
func median(xs []int64) int64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]int64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[(len(s)-1)/2]
}
