// Command javmm-bench is the repo's performance-trajectory harness. It runs
// a fixed matrix of end-to-end migration scenarios plus a set of hot-loop
// kernels and emits a schema-versioned snapshot (BENCH_NNNN.json) that
// splits deterministic metrics (seed-determined, byte-identical across runs
// and machines) from timing metrics (real-clock, machine-dependent).
//
// Usage:
//
//	javmm-bench -out BENCH_0002.json            # produce a snapshot
//	javmm-bench -compare BENCH_0001.json new.json
//	javmm-bench -compare -report-only old.json new.json   # CI: drift fatal, timing advisory
//	javmm-bench -quick -out /tmp/s.json         # reduced matrix for smoke tests
//	javmm-bench -cpuprofile cpu.pprof -out s.json
//
// The comparator exits non-zero on any deterministic-metric drift (always,
// even with -report-only: a deterministic change is a behavior change, not
// noise) and on timing regressions past per-metric thresholds (unless
// -report-only).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"javmm/internal/obs/perf"
)

func main() {
	var o options
	flag.StringVar(&o.Out, "out", "", "write the snapshot to this file (default stdout)")
	flag.Int64Var(&o.Seed, "seed", 1, "deterministic seed for the whole matrix")
	flag.DurationVar(&o.Warmup, "warmup", 60*time.Second, "virtual warmup before each migration")
	flag.Uint64Var(&o.MemMiB, "mem", 2048, "VM memory in MiB for the e2e scenarios")
	flag.IntVar(&o.Runs, "runs", 3, "timed repetitions per scenario/kernel (medians reported)")
	flag.StringVar(&o.Label, "label", "", "free-form label recorded in the snapshot")
	flag.BoolVar(&o.Quick, "quick", false, "reduced matrix and tiny kernel budgets (for smoke tests)")
	flag.BoolVar(&o.Compare, "compare", false, "compare two snapshots: javmm-bench -compare old.json new.json")
	flag.BoolVar(&o.ReportOnly, "report-only", false, "with -compare: timing regressions are advisory (deterministic drift still fails)")
	flag.StringVar(&o.CPUProfile, "cpuprofile", "", "write a CPU profile of the harness run to this file")
	flag.StringVar(&o.MemProfile, "memprofile", "", "write a heap profile at the end of the run to this file")
	flag.Parse()
	o.Args = flag.Args()
	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "javmm-bench:", err)
		os.Exit(1)
	}
}

// errCompareFailed reports a comparison that must fail the process.
var errCompareFailed = errors.New("snapshot comparison failed")

// options collects every CLI knob; run is pure in it so tests drive the full
// command without a process boundary.
type options struct {
	Out        string
	Seed       int64
	Warmup     time.Duration
	MemMiB     uint64
	Runs       int
	Label      string
	Quick      bool
	Compare    bool
	ReportOnly bool
	CPUProfile string
	MemProfile string
	Args       []string // positional: -compare old.json new.json
}

func run(o options, out io.Writer) error {
	if o.Compare {
		return runCompare(o, out)
	}
	if o.CPUProfile != "" {
		f, err := os.Create(o.CPUProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if o.Quick {
		// Smoke settings: short warmup, minimal repetitions, tiny kernel
		// budgets. Quick snapshots are only comparable to other quick
		// snapshots (the warmup changes the deterministic section).
		o.Warmup = 5 * time.Second
		if o.Runs > 2 {
			o.Runs = 2
		}
	}
	if o.Runs < 1 {
		o.Runs = 1
	}

	snap := &perf.Snapshot{
		Schema: perf.SchemaVersion,
		Label:  o.Label,
		Seed:   o.Seed,
		Go:     runtime.Version(),
		OS:     runtime.GOOS,
		Arch:   runtime.GOARCH,
	}
	for _, spec := range scenarioMatrix(o.Quick) {
		fmt.Fprintf(out, "scenario %-28s ", spec.name())
		sc, err := runScenario(spec, o)
		if err != nil {
			return fmt.Errorf("%s: %w", spec.name(), err)
		}
		fmt.Fprintf(out, "%8.2f ms/op  %6d pages sent\n",
			float64(sc.Timing.NsPerOp)/1e6, sc.Deterministic.PagesSent)
		snap.Scenarios = append(snap.Scenarios, sc)
	}
	for _, spec := range fleetMatrix(o.Quick) {
		label := fmt.Sprintf("%s/%s/%dvm", spec.workload, spec.mode, spec.vms)
		if spec.collect {
			label += "+obs"
		}
		fmt.Fprintf(out, "fleet    %-28s ", label)
		scs, err := runFleetScenario(spec, o)
		if err != nil {
			return fmt.Errorf("fleet %s: %w", label, err)
		}
		var pages int64
		for _, sc := range scs {
			pages += sc.Deterministic.PagesSent
		}
		fmt.Fprintf(out, "%8.2f ms/op  %6d pages sent\n",
			float64(scs[0].Timing.NsPerOp)/1e6, pages)
		snap.Scenarios = append(snap.Scenarios, scs...)
	}
	for _, spec := range orchMatrix(o.Quick) {
		label := fmt.Sprintf("evacuate/%s/%dvm", spec.ordering, spec.vms)
		fmt.Fprintf(out, "orch     %-28s ", label)
		scs, err := runOrchScenario(spec, o)
		if err != nil {
			return fmt.Errorf("orch %s: %w", label, err)
		}
		var pages int64
		for _, sc := range scs {
			pages += sc.Deterministic.PagesSent
		}
		fmt.Fprintf(out, "%8.2f ms/op  %6d pages sent\n",
			float64(scs[0].Timing.NsPerOp)/1e6, pages)
		snap.Scenarios = append(snap.Scenarios, scs...)
	}
	for _, spec := range healMatrix(o.Quick) {
		label := fmt.Sprintf("evacuate/%s", spec.arm)
		fmt.Fprintf(out, "heal     %-28s ", label)
		scs, err := runHealScenario(spec, o)
		if err != nil {
			return fmt.Errorf("heal %s: %w", label, err)
		}
		var pages int64
		for _, sc := range scs {
			pages += sc.Deterministic.PagesSent
		}
		fmt.Fprintf(out, "%8.2f ms/op  %6d pages sent\n",
			float64(scs[0].Timing.NsPerOp)/1e6, pages)
		snap.Scenarios = append(snap.Scenarios, scs...)
	}
	for _, k := range kernels(o.Seed) {
		fmt.Fprintf(out, "kernel   %-28s ", k.name)
		kr := measureKernel(k, o.Runs, kernelTarget(o.Quick))
		fmt.Fprintf(out, "%10.1f ns/op\n", float64(kr.Timing.NsPerOp))
		snap.Kernels = append(snap.Kernels, kr)
	}

	if o.MemProfile != "" {
		f, err := os.Create(o.MemProfile)
		if err != nil {
			return err
		}
		runtime.GC()
		err = pprof.WriteHeapProfile(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}

	if o.Out == "" {
		return perf.WriteSnapshot(out, snap)
	}
	f, err := os.Create(o.Out)
	if err != nil {
		return err
	}
	err = perf.WriteSnapshot(f, snap)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "snapshot written to %s (%d scenarios, %d kernels)\n",
		o.Out, len(snap.Scenarios), len(snap.Kernels))
	return nil
}

// runCompare diffs two snapshots and fails on drift or (unless report-only)
// timing regressions.
func runCompare(o options, out io.Writer) error {
	if len(o.Args) != 2 {
		return fmt.Errorf("-compare needs exactly two snapshot paths, got %d", len(o.Args))
	}
	old, err := perf.ReadSnapshotFile(o.Args[0])
	if err != nil {
		return err
	}
	cur, err := perf.ReadSnapshotFile(o.Args[1])
	if err != nil {
		return err
	}
	rep := perf.Compare(old, cur, perf.DefaultThresholds())
	perf.WriteReport(out, rep, o.ReportOnly)
	if !rep.OK(o.ReportOnly) {
		return errCompareFailed
	}
	return nil
}

// kernelTarget is the per-measurement wall budget for one kernel run.
func kernelTarget(quick bool) time.Duration {
	if quick {
		return 2 * time.Millisecond
	}
	return 20 * time.Millisecond
}
