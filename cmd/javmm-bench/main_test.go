package main

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"javmm/internal/obs/perf"
)

// benchQuick drives the real harness in quick mode and returns the parsed
// snapshot. Every test shares the two runs produced by TestMain-less lazy
// initialization below, because each run costs seconds of wall time.
func benchQuick(t *testing.T, path string) *perf.Snapshot {
	t.Helper()
	o := options{
		Out:    path,
		Seed:   1,
		MemMiB: 2048,
		Runs:   1,
		Quick:  true,
	}
	if err := run(o, io.Discard); err != nil {
		t.Fatalf("quick bench run: %v", err)
	}
	s, err := perf.ReadSnapshotFile(path)
	if err != nil {
		t.Fatalf("reading snapshot back: %v", err)
	}
	return s
}

// compareFiles drives the -compare code path exactly as the CLI would.
func compareFiles(reportOnly bool, oldPath, newPath string) error {
	return run(options{
		Compare:    true,
		ReportOnly: reportOnly,
		Args:       []string{oldPath, newPath},
	}, io.Discard)
}

// writeSnap persists a (possibly mutated) snapshot for the comparator.
func writeSnap(t *testing.T, path string, s *perf.Snapshot) {
	t.Helper()
	var buf bytes.Buffer
	if err := perf.WriteSnapshot(&buf, s); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestHarness runs the quick matrix twice and asserts the full acceptance
// contract on the artifacts: byte-identical deterministic sections across
// runs, and a comparator that passes clean inputs, fails injected timing
// regressions (unless report-only), and fails deterministic drift always.
func TestHarness(t *testing.T) {
	if testing.Short() {
		t.Skip("quick bench runs take seconds; skipped with -short")
	}
	dir := t.TempDir()
	p1 := filepath.Join(dir, "q1.json")
	p2 := filepath.Join(dir, "q2.json")
	s1 := benchQuick(t, p1)
	s2 := benchQuick(t, p2)

	if len(s1.Scenarios) == 0 || len(s1.Kernels) == 0 {
		t.Fatalf("empty snapshot: %d scenarios, %d kernels", len(s1.Scenarios), len(s1.Kernels))
	}

	t.Run("deterministic-bytes-identical", func(t *testing.T) {
		b1, b2 := s1.DeterministicBytes(), s2.DeterministicBytes()
		if !bytes.Equal(b1, b2) {
			t.Errorf("two runs at the same seed diverged:\nrun1: %s\nrun2: %s", b1, b2)
		}
	})

	t.Run("scenario-sanity", func(t *testing.T) {
		for _, sc := range s1.Scenarios {
			if sc.Deterministic.PagesSent == 0 {
				t.Errorf("%s: sent no pages", sc.Name)
			}
			if sc.Timing.NsPerOp <= 0 {
				t.Errorf("%s: NsPerOp = %d", sc.Name, sc.Timing.NsPerOp)
			}
			if len(sc.Stages) == 0 {
				t.Errorf("%s: no stage breakdown from the accounting run", sc.Name)
			}
		}
		for _, k := range s1.Kernels {
			if len(k.Deterministic) == 0 {
				t.Errorf("%s: no deterministic check values", k.Name)
			}
		}
	})

	t.Run("compare-identical-passes", func(t *testing.T) {
		if err := compareFiles(false, p1, p1); err != nil {
			t.Errorf("identical snapshots compared unequal: %v", err)
		}
	})

	t.Run("compare-catches-timing-regression", func(t *testing.T) {
		reg, err := perf.ReadSnapshotFile(p1)
		if err != nil {
			t.Fatal(err)
		}
		// Inject a 2x slowdown — far past every threshold, and past the 20%
		// bound the acceptance criteria name.
		reg.Scenarios[0].Timing.NsPerOp *= 2
		pr := filepath.Join(t.TempDir(), "regressed.json")
		writeSnap(t, pr, reg)
		if err := compareFiles(false, p1, pr); !errors.Is(err, errCompareFailed) {
			t.Errorf("2x NsPerOp regression not caught: err = %v", err)
		}
		// Report-only mode tolerates timing regressions (CI advisory lane).
		if err := compareFiles(true, p1, pr); err != nil {
			t.Errorf("report-only rejected a timing-only regression: %v", err)
		}
	})

	t.Run("compare-catches-deterministic-drift", func(t *testing.T) {
		drift, err := perf.ReadSnapshotFile(p1)
		if err != nil {
			t.Fatal(err)
		}
		drift.Scenarios[0].Deterministic.PagesSent++
		pd := filepath.Join(t.TempDir(), "drifted.json")
		writeSnap(t, pd, drift)
		// Deterministic drift is fatal in BOTH modes: report-only only
		// relaxes timing judgments, never behavior changes.
		if err := compareFiles(false, p1, pd); !errors.Is(err, errCompareFailed) {
			t.Errorf("deterministic drift not caught: err = %v", err)
		}
		if err := compareFiles(true, p1, pd); !errors.Is(err, errCompareFailed) {
			t.Errorf("deterministic drift not caught in report-only mode: err = %v", err)
		}
	})

	t.Run("compare-catches-missing-entry", func(t *testing.T) {
		missing, err := perf.ReadSnapshotFile(p1)
		if err != nil {
			t.Fatal(err)
		}
		missing.Kernels = missing.Kernels[1:]
		pm := filepath.Join(t.TempDir(), "missing.json")
		writeSnap(t, pm, missing)
		if err := compareFiles(true, p1, pm); !errors.Is(err, errCompareFailed) {
			t.Errorf("missing kernel not caught: err = %v", err)
		}
	})

	t.Run("snapshot-round-trip", func(t *testing.T) {
		var first, second bytes.Buffer
		if err := perf.WriteSnapshot(&first, s1); err != nil {
			t.Fatal(err)
		}
		rt, err := perf.ReadSnapshot(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if err := perf.WriteSnapshot(&second, rt); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Error("write -> read -> write did not round-trip byte-identically")
		}
	})
}

func TestCompareArgValidation(t *testing.T) {
	if err := run(options{Compare: true, Args: []string{"only-one.json"}}, io.Discard); err == nil {
		t.Error("one positional arg accepted by -compare")
	}
}
