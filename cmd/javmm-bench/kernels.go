package main

import (
	"time"

	"javmm/internal/guestos"
	"javmm/internal/mem"
	"javmm/internal/migration"
	"javmm/internal/obs/perf"
)

// benchSink absorbs kernel results so the compiler cannot eliminate the
// measured work.
var benchSink uint64

// kernelSpec is one hot-loop microbenchmark: a per-iteration operation plus
// seed-determined check values proving two runs did the same work. The check
// values are computed once at construction, independently of the timing
// loop, so machine-dependent calibration never leaks into the deterministic
// section.
type kernelSpec struct {
	name string
	det  map[string]int64
	op   func()
}

// seededPage fills a deterministic pseudo-random buffer from (seed, id).
func seededPage(seed int64, id uint64, size int) []byte {
	buf := make([]byte, size)
	x := uint64(seed)*0x9E3779B97F4A7C15 + id + 1
	for i := range buf {
		x = x*6364136223846793005 + 1442695040888963407
		buf[i] = byte(x >> 56)
	}
	return buf
}

// kernels builds the full microbenchmark set: the digest primitives and
// dirty-bitmap scans every migration iteration leans on, plus one kernel per
// wire-codec chain (built through the same Config.NewWireCodec constructor
// the engine uses).
func kernels(seed int64) []kernelSpec {
	var ks []kernelSpec

	// --- digest primitives (internal/mem/digest.go) ---
	page4k := seededPage(seed, 0, mem.PageSize)
	ks = append(ks, kernelSpec{
		name: "kernel/mem/page-digest-4k",
		det:  map[string]int64{"digest": int64(mem.PageDigest(page4k))},
		op:   func() { benchSink += mem.PageDigest(page4k) },
	})
	word := seededPage(seed, 1, 8)
	ks = append(ks, kernelSpec{
		name: "kernel/mem/page-digest-8b",
		det:  map[string]int64{"digest": int64(mem.PageDigest(word))},
		op:   func() { benchSink += mem.PageDigest(word) },
	})
	// One op folds 1024 page digests into a rolling value, the shape of the
	// destination's rolling-digest update across a transfer.
	const mixPages = 1024
	mixDigests := make([]uint64, mixPages)
	for i := range mixDigests {
		mixDigests[i] = mem.PageDigest(seededPage(seed, uint64(i)+2, 16))
	}
	mixFold := func() uint64 {
		var rolling uint64
		for i, d := range mixDigests {
			rolling = mem.MixDigest(rolling, mem.PFN(i), d)
		}
		return rolling
	}
	ks = append(ks, kernelSpec{
		name: "kernel/mem/mix-digest",
		det:  map[string]int64{"rolling": int64(mixFold()), "pages": mixPages},
		op:   func() { benchSink += mixFold() },
	})

	// --- dirty-bitmap scans (internal/mem/bitmap.go) ---
	const bmBits = 1 << 16
	dense := mem.NewBitmap(bmBits)
	for p := mem.PFN(0); p < bmBits; p += 2 {
		dense.Set(p)
	}
	sparse := mem.NewBitmap(bmBits)
	for p := mem.PFN(0); p < bmBits; p += 64 {
		sparse.Set(p)
	}
	rangeCount := func(b *mem.Bitmap) uint64 {
		var n uint64
		b.Range(func(mem.PFN) bool { n++; return true })
		return n
	}
	nextSetWalk := func(b *mem.Bitmap) uint64 {
		var n uint64
		for p := b.NextSet(0); p != mem.NoPFN; p = b.NextSet(p + 1) {
			n++
		}
		return n
	}
	ks = append(ks,
		kernelSpec{
			name: "kernel/mem/bitmap-scan-dense",
			det:  map[string]int64{"count": int64(rangeCount(dense)), "bits": bmBits},
			op:   func() { benchSink += rangeCount(dense) },
		},
		kernelSpec{
			name: "kernel/mem/bitmap-scan-sparse",
			det:  map[string]int64{"count": int64(rangeCount(sparse)), "bits": bmBits},
			op:   func() { benchSink += rangeCount(sparse) },
		},
		kernelSpec{
			name: "kernel/mem/bitmap-next-set",
			det:  map[string]int64{"count": int64(nextSetWalk(dense))},
			op:   func() { benchSink += nextSetWalk(dense) },
		},
		kernelSpec{
			name: "kernel/mem/bitmap-count",
			det:  map[string]int64{"count": int64(dense.Count())},
			op:   func() { benchSink += dense.Count() },
		},
	)
	scratch := mem.NewBitmap(bmBits)
	andNot := func() uint64 {
		scratch.CopyFrom(dense)
		scratch.AndNot(sparse)
		return scratch.Count()
	}
	ks = append(ks, kernelSpec{
		name: "kernel/mem/bitmap-andnot",
		det:  map[string]int64{"count": int64(andNot())},
		op:   func() { benchSink += andNot() },
	})

	// --- wire-codec chains (internal/migration, via Config.NewWireCodec) ---
	hintFor := func(p mem.PFN) uint8 {
		switch p % 4 {
		case 0:
			return guestos.HintDefault
		case 1:
			return guestos.HintFast
		case 2:
			return guestos.HintStrong
		default:
			return guestos.HintNone
		}
	}
	codecCases := []struct {
		name string
		cfg  migration.Config
		hint func(mem.PFN) uint8
	}{
		{"kernel/codec/raw", migration.Config{}, nil},
		{"kernel/codec/compress", migration.Config{Compress: true}, nil},
		{"kernel/codec/hinted", migration.Config{Compress: true}, hintFor},
		{"kernel/codec/delta", migration.Config{Compress: true, DeltaCompression: true}, nil},
	}
	const codecPages = 256
	for _, cc := range codecCases {
		cc.cfg.FillDefaults()
		// Deterministic check: a fresh chain encodes every page twice (first
		// send, then resend — the pass that exercises the delta cache); the
		// summed wire bytes pin the chain's behaviour.
		detCodec, _ := cc.cfg.NewWireCodec(codecPages, cc.hint, nil)
		var wire uint64
		for p := mem.PFN(0); p < codecPages; p++ {
			w1, _ := detCodec.Encode(p, mem.PageSize)
			w2, _ := detCodec.Encode(p, mem.PageSize)
			wire += w1 + w2
		}
		// Timing op: a long-lived chain encoding pages round-robin, the
		// steady-state (cache-warm for delta) shape of a live iteration.
		opCodec, _ := cc.cfg.NewWireCodec(codecPages, cc.hint, nil)
		var next mem.PFN
		ks = append(ks, kernelSpec{
			name: cc.name,
			det:  map[string]int64{"wire_bytes": int64(wire), "pages": codecPages},
			op: func() {
				w, _ := opCodec.Encode(next, mem.PageSize)
				benchSink += w
				next = (next + 1) % codecPages
			},
		})
	}
	return ks
}

// measureKernel calibrates an iteration count that fills roughly the target
// wall budget, then takes `runs` timed measurements at that fixed count and
// reports per-op medians.
func measureKernel(k kernelSpec, runs int, target time.Duration) perf.Kernel {
	iters := 1
	for {
		start := time.Now()
		for i := 0; i < iters; i++ {
			k.op()
		}
		if el := time.Since(start); el >= target || iters >= 1<<28 {
			break
		}
		iters *= 2
	}
	ns := make([]int64, 0, runs)
	allocB := make([]int64, 0, runs)
	allocN := make([]int64, 0, runs)
	for r := 0; r < runs; r++ {
		before := readAllocs()
		start := time.Now()
		for i := 0; i < iters; i++ {
			k.op()
		}
		el := time.Since(start)
		d := readAllocs().sub(before)
		ns = append(ns, int64(el)/int64(iters))
		allocB = append(allocB, d.bytes/int64(iters))
		allocN = append(allocN, d.objects/int64(iters))
	}
	return perf.Kernel{
		Name:          k.name,
		Deterministic: k.det,
		Timing: perf.Timing{
			Runs:            runs,
			NsPerOp:         median(ns),
			AllocBytesPerOp: median(allocB),
			AllocsPerOp:     median(allocN),
		},
	}
}
