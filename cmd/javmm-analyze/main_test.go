package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"io"

	"javmm"
	"javmm/internal/obs/perf"
)

// base returns the quick-test option set; cases tweak what they care about.
func base() options {
	return options{
		Run:       true,
		Format:    "table",
		TopN:      5,
		Workload:  "derby",
		Mode:      "javmm",
		MemMiB:    2048,
		VCPUs:     4,
		Bandwidth: javmm.GigabitEthernet,
		Warmup:    30 * time.Second,
		Seed:      1,
		Collector: "parallel",
	}
}

func TestRunModeTables(t *testing.T) {
	var buf bytes.Buffer
	if err := run(base(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Downtime attribution",
		"workload downtime",
		"enforced-gc",
		"Iteration series",
		"Ledger summary",
		"Traffic by send reason",
		"bitmap-skip",
		"Integrity and resume",
		"pages audited",
		"rolling digest",
		"Top 5 hottest pages",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("run-mode output missing %q", want)
		}
	}
}

func TestRunModeCorruptionRepairRows(t *testing.T) {
	o := base()
	o.Faults = []string{"corrupt-page-stream#40,count=3"}
	var buf bytes.Buffer
	if err := run(o, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"digest mismatches",
		"repairs",
		"repair traffic",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("corrupting run output missing %q:\n%s", want, out)
		}
	}
}

func TestRunModePostCopyFaultStalls(t *testing.T) {
	o := base()
	o.Mode = "post-copy"
	var buf bytes.Buffer
	if err := run(o, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Demand-fault stalls") {
		t.Errorf("post-copy output missing fault-stall quantile summary:\n%s", out)
	}
	if !strings.Contains(out, "demand-fault") {
		t.Errorf("post-copy output missing demand-fault traffic row")
	}
}

// TestRunModeDeterministic is the acceptance criterion: two same-seed runs
// must produce byte-identical analyzer output, in both formats.
func TestRunModeDeterministic(t *testing.T) {
	for _, format := range []string{"table", "csv"} {
		o := base()
		o.Mode = "hybrid"
		o.Format = format
		var a, b bytes.Buffer
		if err := run(o, &a); err != nil {
			t.Fatal(err)
		}
		if err := run(o, &b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("format %s: same-seed runs differ", format)
		}
		if a.Len() == 0 {
			t.Errorf("format %s: empty output", format)
		}
	}
}

func TestCSVFormat(t *testing.T) {
	o := base()
	o.Format = "csv"
	var buf bytes.Buffer
	if err := run(o, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# Downtime attribution") {
		t.Errorf("csv output missing table title comment")
	}
	if !strings.Contains(out, "component,time,ns,share") {
		t.Errorf("csv output missing CSV header row:\n%s", out[:min(len(out), 600)])
	}
}

func TestTraceAndMetricsModes(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.jsonl")
	metricsPath := filepath.Join(dir, "metrics.json")

	o := base()
	o.TraceOut = tracePath
	o.MetricsOut = metricsPath
	if err := run(o, new(bytes.Buffer)); err != nil {
		t.Fatal(err)
	}

	var traceBuf bytes.Buffer
	if err := run(options{TracePath: tracePath, Format: "table", TopN: 5}, &traceBuf); err != nil {
		t.Fatal(err)
	}
	out := traceBuf.String()
	for _, want := range []string{"Events by kind", "Spans by track and name", "migration.run", "vm-paused"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace-mode output missing %q:\n%s", want, out)
		}
	}

	var metricsBuf bytes.Buffer
	if err := run(options{MetricsPath: metricsPath, Format: "table", TopN: 5}, &metricsBuf); err != nil {
		t.Fatal(err)
	}
	out = metricsBuf.String()
	for _, want := range []string{"Counters", "migration.bytes_on_wire", "Histograms", "p95"} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics-mode output missing %q", want)
		}
	}

	var promBuf bytes.Buffer
	if err := run(options{MetricsPath: metricsPath, Prom: true, Format: "table", TopN: 5}, &promBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(promBuf.String(), "# TYPE javmm_migration_bytes_on_wire counter") {
		t.Errorf("prom output missing typed counter line:\n%s", promBuf.String()[:min(promBuf.Len(), 400)])
	}
}

func TestSourceSelection(t *testing.T) {
	if err := run(options{Format: "table"}, new(bytes.Buffer)); err == nil {
		t.Error("no source chosen: want error")
	}
	if err := run(options{Run: true, TracePath: "x", Format: "table"}, new(bytes.Buffer)); err == nil {
		t.Error("two sources chosen: want error")
	}
	if err := run(options{Run: true, Format: "xml"}, new(bytes.Buffer)); err == nil {
		t.Error("bad format: want error")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestRunModeDegradedVisible(t *testing.T) {
	o := base()
	o.Faults = []string{"lkm.handshake"}
	o.FaultSeed = 1
	var buf bytes.Buffer
	if err := run(o, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "mode=xen (degraded from javmm)") {
		t.Fatalf("header does not show effective mode:\n%s", out)
	}
	if !strings.Contains(out, "DEGRADED javmm -> xen") {
		t.Fatalf("attribution notes do not show degradation:\n%s", out)
	}
	// A degraded run charges neither assisted component; the attribution
	// still reconciled (run() would have failed otherwise).
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "enforced-gc") || strings.HasPrefix(line, "final-update") {
			if !strings.Contains(line, "0 µs") {
				t.Errorf("degraded run charges assisted component: %q", line)
			}
		}
	}
}

func TestRunModeAbortReported(t *testing.T) {
	o := base()
	o.Mode = "xen"
	o.Faults = []string{"dest.crash@2s"}
	var buf bytes.Buffer
	if err := run(o, &buf); err == nil {
		t.Fatal("crashed-destination run succeeded")
	}
	if !strings.Contains(buf.String(), "run ABORTED") {
		t.Fatalf("abort banner missing:\n%s", buf.String())
	}
}

// TestJSONOutput covers the -json machine format: schema-versioned, shares
// the bench Deterministic block, round-trips emit -> parse -> emit
// byte-identically, and is itself deterministic across independent runs.
func TestJSONOutput(t *testing.T) {
	o := base()
	o.JSON = true
	var first bytes.Buffer
	if err := run(o, &first); err != nil {
		t.Fatal(err)
	}
	doc, err := perf.ReadAnalyzeDoc(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatalf("parsing -json output: %v", err)
	}
	if doc.Schema != perf.AnalyzeSchemaVersion {
		t.Fatalf("schema = %q", doc.Schema)
	}
	d := doc.Deterministic
	if d.Mode != "javmm" || d.Workload != "derby" || d.Codec != "raw" {
		t.Fatalf("labels = %s/%s/%s", d.Mode, d.Workload, d.Codec)
	}
	if d.PagesSent == 0 || d.TotalVirtualNs == 0 {
		t.Fatalf("empty deterministic block: %+v", d)
	}
	if len(doc.Components) == 0 {
		t.Fatal("no downtime components")
	}
	if _, ok := doc.Components["enforced-gc"]; !ok {
		t.Fatalf("assisted run missing enforced-gc component: %v", doc.Components)
	}
	// Components must sum to the workload downtime exactly (the attribution
	// reconciles, and the JSON carries the same numbers).
	var sum int64
	for _, ns := range doc.Components {
		sum += ns
	}
	if sum != d.WorkloadDowntimeNs {
		t.Fatalf("components sum %d != workload downtime %d", sum, d.WorkloadDowntimeNs)
	}

	// Round trip: parse -> re-emit is byte-identical.
	var again bytes.Buffer
	if err := perf.WriteAnalyzeDoc(&again, doc); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), again.Bytes()) {
		t.Fatal("emit -> parse -> emit did not round-trip byte-identically")
	}

	// Deterministic: an independent identical run emits identical bytes.
	var second bytes.Buffer
	if err := run(o, &second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("-json output not deterministic across identical runs")
	}
}

func TestJSONRequiresRun(t *testing.T) {
	o := base()
	o.Run = false
	o.MetricsPath = "whatever.json"
	o.JSON = true
	if err := run(o, io.Discard); err == nil || !strings.Contains(err.Error(), "-json requires -run") {
		t.Fatalf("err = %v, want -json requires -run", err)
	}
}

// -heal ingests a healing summary, reconciles the ledger's resume-refetch
// bucket against the resume plans' queued refetches, and renders the Healing
// table (and the Prometheus page with -prom).
func TestHealMode(t *testing.T) {
	// A real healed plan: the preferred destination is down, the move
	// relocates on its second attempt.
	res, err := javmm.Orchestrate(javmm.OrchestratorOptions{
		Cluster:   mustCluster(t, "host src ram 64G; host d1 ram 64G; host d2 ram 64G; vm fv0 on src workload mpeg mem 512M"),
		Plan:      mustPlan(t, "evacuate host src"),
		Mode:      javmm.ModeXen,
		Seed:      1,
		Ordering:  javmm.OrderAdmission,
		Admission: javmm.AdmissionPolicy{MaxPerLink: 1, MaxPerHost: 1},
		Warmup:    2 * time.Second,
		FaultPlan: mustFaultPlan(t, "host.crash@0s,for=10m,host=d1"),
		Retry:     javmm.RetryPolicy{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "heal.json")
	if err := res.Healing().WriteJSON(path); err != nil {
		t.Fatal(err)
	}

	o := options{Format: "table", HealPath: path}
	var buf bytes.Buffer
	if err := run(o, &buf); err != nil {
		t.Fatalf("heal mode failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"Healing", "relocated", "src->d2", "totals: 1 retries, 1 relocations"} {
		if !strings.Contains(out, want) {
			t.Fatalf("heal table missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	o.Prom = true
	if err := run(o, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"javmm_heal_relocations_total 1", `javmm_heal_move_attempts{vm="fv0",outcome="relocated"} 2`} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("heal prom page missing %q:\n%s", want, buf.String())
		}
	}

	// A summary whose ledger tags more resume sends than any resume plan
	// queued cannot reconcile.
	hs, err := javmm.ReadHealingSummary(path)
	if err != nil {
		t.Fatal(err)
	}
	hs.Moves[0].LedgerResumeSends = hs.Moves[0].RefetchPages + 1
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := hs.WriteJSON(bad); err != nil {
		t.Fatal(err)
	}
	if err := run(options{Format: "table", HealPath: bad}, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "reconcile") {
		t.Fatalf("err = %v, want reconciliation failure", err)
	}
}

func mustCluster(t *testing.T, s string) *javmm.Cluster {
	t.Helper()
	c, err := javmm.ParseCluster(s)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mustPlan(t *testing.T, s string) *javmm.MigrationPlan {
	t.Helper()
	p, err := javmm.ParseMigrationPlan(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustFaultPlan(t *testing.T, rules ...string) javmm.FaultPlan {
	t.Helper()
	p, err := javmm.ParseFaultPlan(rules)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
