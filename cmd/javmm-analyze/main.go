// Command javmm-analyze turns a migration's observability exports into
// deterministic attribution tables: where every byte on the wire came from
// (the per-page provenance ledger) and where every tick of downtime went
// (the attribution breakdown). It reconciles byte-for-byte with the
// migration report, so the tables are an audit, not an estimate.
//
// Sources, one of which must be chosen:
//
//	javmm-analyze -run -workload derby -mode javmm     # run and analyze
//	javmm-analyze -trace out.jsonl                     # analyze a JSONL trace
//	javmm-analyze -metrics metrics.json                # analyze a snapshot
//	javmm-analyze -metrics metrics.json -prom          # Prometheus exposition
//
// Fleet mode analyzes N concurrent migrations over one shared fabric: run a
// fleet live, or ingest the artifacts a `javmm-migrate -peers` run exported:
//
//	javmm-analyze -fleet 4 -workload derby -mode javmm # run and analyze a fleet
//	javmm-analyze -fleet 4 -prom                       # labeled Prometheus page
//	javmm-analyze -fleet-metrics fleet.json            # ingest a fleet snapshot
//	javmm-analyze -fleet-sla sla.json                  # ingest a fleet SLA cost
//	javmm-analyze -heal heal.json                      # ingest a healing summary
//
// Output is byte-identical across same-seed runs; -format csv emits each
// table as RFC-4180 CSV for plotting.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"javmm"
	"javmm/internal/experiments"
	"javmm/internal/obs/perf"
)

func main() {
	var o options
	flag.BoolVar(&o.Run, "run", false, "boot a VM, migrate it and analyze the run")
	flag.StringVar(&o.TracePath, "trace", "", "analyze an existing JSONL trace file")
	flag.StringVar(&o.MetricsPath, "metrics", "", "analyze an existing metrics snapshot (JSON)")
	flag.IntVar(&o.Fleet, "fleet", 0, "run an N-VM fleet of -workload over one shared link and analyze it (fleet table, per-link utilization, SLA summary)")
	flag.StringVar(&o.FleetMetricsPath, "fleet-metrics", "", "analyze a fleet metrics snapshot (JSON from javmm-migrate -peers -metrics-out)")
	flag.StringVar(&o.FleetSLAPath, "fleet-sla", "", "analyze a fleet SLA cost file (JSON from javmm-migrate -peers -sla-out)")
	flag.StringVar(&o.HealPath, "heal", "", "analyze a healing summary (JSON from javmm-migrate -retry -heal-out): per-move outcome table, retry/relocation totals, token-reuse savings, ledger reconciliation")
	flag.DurationVar(&o.Stagger, "stagger", 500*time.Millisecond, "with -fleet: delay between consecutive engine starts")
	flag.BoolVar(&o.Prom, "prom", false, "render the metrics snapshot in Prometheus text format")
	flag.BoolVar(&o.JSON, "json", false, "with -run: emit the machine-readable analyze document (javmm-analyze/v1) instead of tables")
	flag.StringVar(&o.Format, "format", "table", "output format: table or csv")
	flag.IntVar(&o.TopN, "top", 10, "number of hottest pages to list")

	// Run-mode knobs, mirroring javmm-migrate.
	flag.StringVar(&o.Workload, "workload", "derby", "workload to run: "+strings.Join(javmm.WorkloadNames(), ", "))
	flag.StringVar(&o.Mode, "mode", "javmm", "migration mode: xen, javmm, post-copy or hybrid")
	flag.Uint64Var(&o.MemMiB, "mem", 2048, "VM memory in MiB")
	flag.IntVar(&o.VCPUs, "vcpus", 4, "virtual CPUs")
	flag.Uint64Var(&o.Bandwidth, "bandwidth", javmm.GigabitEthernet, "link payload bandwidth in bytes/sec")
	flag.DurationVar(&o.Warmup, "warmup", 300*time.Second, "virtual warmup before migration")
	flag.Int64Var(&o.Seed, "seed", 1, "deterministic seed")
	flag.StringVar(&o.Collector, "collector", "parallel", "garbage collector: parallel or g1")
	flag.BoolVar(&o.Compress, "compress", false, "compress unskipped pages (§6 extension)")
	flag.StringVar(&o.TraceOut, "trace-out", "", "also write the run's trace as JSONL to this file")
	flag.StringVar(&o.MetricsOut, "metrics-out", "", "also write the run's metrics snapshot (JSON) to this file")
	flag.Func("fault", "inject a fault into the -run migration: site[@at][#nth][,key=val...] (repeatable)", func(s string) error {
		o.Faults = append(o.Faults, s)
		return nil
	})
	flag.Int64Var(&o.FaultSeed, "fault-seed", 1, "seed for the retry backoff jitter")
	flag.Parse()
	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "javmm-analyze:", err)
		os.Exit(1)
	}
}

// options collects every CLI knob; run is pure in it so tests drive the full
// command without a process boundary.
type options struct {
	Run              bool
	TracePath        string
	MetricsPath      string
	Fleet            int
	FleetMetricsPath string
	FleetSLAPath     string
	HealPath         string
	Stagger          time.Duration
	Prom             bool
	JSON             bool
	Format           string
	TopN             int

	Workload   string
	Mode       string
	MemMiB     uint64
	VCPUs      int
	Bandwidth  uint64
	Warmup     time.Duration
	Seed       int64
	Collector  string
	Compress   bool
	TraceOut   string
	MetricsOut string
	Faults     []string // -fault rule specs for the -run migration
	FaultSeed  int64
}

func run(o options, out io.Writer) error {
	if o.Format != "table" && o.Format != "csv" {
		return fmt.Errorf("unknown format %q (want table or csv)", o.Format)
	}
	sources := 0
	for _, set := range []bool{o.Run, o.TracePath != "", o.MetricsPath != "",
		o.Fleet > 0, o.FleetMetricsPath != "", o.FleetSLAPath != "", o.HealPath != ""} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return fmt.Errorf("choose exactly one of -run, -trace, -metrics, -fleet, -fleet-metrics, -fleet-sla or -heal")
	}
	if o.JSON && !o.Run {
		return fmt.Errorf("-json requires -run (traces and metrics files have their own machine formats)")
	}
	if o.JSON && o.Prom {
		return fmt.Errorf("-json and -prom are mutually exclusive")
	}
	switch {
	case o.Run:
		return analyzeRun(o, out)
	case o.TracePath != "":
		return analyzeTrace(o, out)
	case o.Fleet > 0:
		return analyzeFleet(o, out)
	case o.FleetMetricsPath != "":
		return analyzeFleetMetrics(o, out)
	case o.FleetSLAPath != "":
		return analyzeFleetSLA(o, out)
	case o.HealPath != "":
		return analyzeHealing(o, out)
	default:
		return analyzeMetrics(o, out)
	}
}

// emit renders one table in the chosen format.
func emit(o options, out io.Writer, t *experiments.Table) {
	if o.Format == "csv" {
		fmt.Fprintf(out, "# %s\n%s\n", t.Title, t.CSV())
		return
	}
	fmt.Fprintln(out, t.Render())
}

// analyzeRun boots a VM, migrates it with a ledger and metrics attached, and
// prints the reconciled attribution of the finished run.
func analyzeRun(o options, out io.Writer) error {
	prof, err := javmm.Workload(o.Workload)
	if err != nil {
		return err
	}
	mode, err := javmm.ParseMode(o.Mode)
	if err != nil {
		return err
	}
	vm, err := javmm.BootVM(javmm.BootConfig{
		MemBytes:  o.MemMiB << 20,
		VCPUs:     o.VCPUs,
		Profile:   prof,
		Assisted:  mode == javmm.ModeJAVMM,
		Seed:      o.Seed,
		Collector: o.Collector,
	})
	if err != nil {
		return err
	}
	vm.Driver.Run(o.Warmup)
	if vm.Driver.Err != nil {
		return vm.Driver.Err
	}

	led := javmm.NewLedger()
	metrics := javmm.NewMetrics(vm.Clock)
	engine := javmm.EngineConfig{Compress: o.Compress}
	engine.Recovery.Seed = o.FaultSeed
	opts := javmm.MigrateOptions{
		Mode:      mode,
		Bandwidth: o.Bandwidth,
		Ledger:    led,
		Metrics:   metrics,
		Engine:    engine,
	}
	if len(o.Faults) > 0 {
		plan, err := javmm.ParseFaultPlan(o.Faults)
		if err != nil {
			return err
		}
		inj, err := javmm.NewFaultInjector(vm.Clock, plan)
		if err != nil {
			return err
		}
		opts.Faults = inj
	}
	var tracer *javmm.Tracer
	if o.TraceOut != "" {
		tracer = javmm.NewTracer(vm.Clock)
		opts.Tracer = tracer
	}
	res, err := javmm.Migrate(vm, opts)
	if err != nil {
		if res != nil && res.Recovery != nil && res.Recovery.Aborted {
			fmt.Fprintf(out, "run ABORTED after %v: %s (source resumed, destination discarded)\n",
				res.TotalTime, res.Recovery.AbortReason)
		}
		return err
	}
	a, err := javmm.Attribute(res, led)
	if err != nil {
		return err
	}
	snap := metrics.Snapshot()

	if o.JSON {
		return emitAnalyzeJSON(o, out, prof.Name, res, a)
	}

	modeLabel := res.EffectiveMode().String()
	if a.Degraded != nil {
		modeLabel = fmt.Sprintf("%s (degraded from %s)", res.EffectiveMode(), a.Degraded.From)
	}
	fmt.Fprintf(out, "run: workload=%s mode=%s mem=%dMiB seed=%d total-time=%v traffic=%s\n\n",
		prof.Name, modeLabel, o.MemMiB, o.Seed, res.TotalTime, fmtBytes(a.TotalBytes))
	emit(o, out, attributionTable(a))
	emit(o, out, iterationTable(a))
	sum := led.Summary()
	emit(o, out, ledgerTable(sum))
	emit(o, out, trafficTable(sum))
	emit(o, out, skipTable(sum))
	if t := integrityTable(res.Report, sum); t != nil {
		emit(o, out, t)
	}
	emit(o, out, topPagesTable(led.TopPages(o.TopN), o.TopN))
	if t := faultStallTable(snap); t != nil {
		emit(o, out, t)
	}

	if o.TraceOut != "" {
		if err := writeFile(o.TraceOut, func(w io.Writer) error {
			return javmm.WriteTraceJSONL(w, tracer.Events())
		}); err != nil {
			return err
		}
	}
	if o.MetricsOut != "" {
		if err := writeFile(o.MetricsOut, func(w io.Writer) error {
			return javmm.WriteMetricsJSON(w, snap)
		}); err != nil {
			return err
		}
	}
	if o.Prom {
		return javmm.WritePrometheus(out, snap)
	}
	return nil
}

// emitAnalyzeJSON renders the run as the javmm-analyze/v1 document: the same
// deterministic metric block a bench scenario carries, plus the reconciled
// downtime attribution as a component -> nanoseconds map. Trajectory tooling
// can diff this against a BENCH_NNNN.json scenario directly.
func emitAnalyzeJSON(o options, out io.Writer, workload string, res *javmm.Result, a *javmm.Attribution) error {
	det := javmm.BenchDeterministic(res)
	det.Workload = workload
	det.Codec = "raw"
	if o.Compress {
		det.Codec = "compress"
	}
	doc := &perf.AnalyzeDoc{
		Schema: perf.AnalyzeSchemaVersion,
		Source: fmt.Sprintf("run:workload=%s,mode=%s,mem=%d,bandwidth=%d,warmup=%s,seed=%d",
			workload, o.Mode, o.MemMiB, o.Bandwidth, o.Warmup, o.Seed),
		Seed:          o.Seed,
		Deterministic: det,
		Components:    make(map[string]int64),
	}
	for _, c := range a.Components() {
		doc.Components[c.Name] = c.Dur.Nanoseconds()
	}
	return perf.WriteAnalyzeDoc(out, doc)
}

// analyzeTrace summarizes a JSONL trace: event counts by kind and the
// begin/end span roll-up per track.
func analyzeTrace(o options, out io.Writer) error {
	f, err := os.Open(o.TracePath)
	if err != nil {
		return err
	}
	events, err := javmm.ReadTraceJSONL(f)
	f.Close()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "trace: %s (%d events)\n\n", o.TracePath, len(events))
	emit(o, out, kindTable(events))
	emit(o, out, spanTable(events))
	return nil
}

// analyzeFleet runs an N-VM fleet with the full observability plane attached
// and prints the fleet view: per-VM outcomes, per-link utilization with byte
// conservation, per-flow contention and the SLA cost summary. With -prom the
// labeled Prometheus page (per-VM vm="..." series, fleet scope="fleet"
// series) replaces the tables; -metrics-out and -trace-out export the fleet
// snapshot and the merged time-ordered JSONL stream.
func analyzeFleet(o options, out io.Writer) error {
	prof, err := javmm.Workload(o.Workload)
	if err != nil {
		return err
	}
	mode, err := javmm.ParseMode(o.Mode)
	if err != nil {
		return err
	}
	profiles := make([]javmm.Profile, o.Fleet)
	for i := range profiles {
		profiles[i] = prof
	}
	m := javmm.DefaultSLA()
	res, err := javmm.MigrateMany(javmm.FleetOptions{
		Mode:      mode,
		Profiles:  profiles,
		Seed:      o.Seed,
		MemBytes:  o.MemMiB << 20,
		Bandwidth: o.Bandwidth,
		Warmup:    o.Warmup,
		Stagger:   o.Stagger,
		Engine:    javmm.EngineConfig{Compress: o.Compress},
		Collect:   true,
		SLA:       &m,
	})
	if err != nil {
		return err
	}
	for i := range res.VMs {
		if e := res.VMs[i].Err; e != nil {
			return fmt.Errorf("%s: %w", res.VMs[i].Name, e)
		}
		if e := res.VMs[i].VerifyErr; e != nil {
			return fmt.Errorf("%s: destination verification FAILED: %w", res.VMs[i].Name, e)
		}
	}

	if o.TraceOut != "" {
		if err := writeFile(o.TraceOut, func(w io.Writer) error {
			return javmm.WriteTraceJSONL(w, res.Obs.MergedEvents())
		}); err != nil {
			return err
		}
	}
	if o.MetricsOut != "" {
		if err := writeFile(o.MetricsOut, func(w io.Writer) error {
			return javmm.WriteFleetSnapshotJSON(w, res.Obs.Snapshot())
		}); err != nil {
			return err
		}
	}
	if o.Prom {
		return res.Obs.WritePrometheus(out)
	}

	fmt.Fprintf(out, "fleet: %d×%s mode=%s mem=%dMiB seed=%d makespan=%v\n\n",
		o.Fleet, prof.Name, mode, o.MemMiB, o.Seed, res.MakeSpan)
	emit(o, out, fleetTable(res))
	emit(o, out, linkTable(res.Fabric))
	emit(o, out, flowTable(res.Fabric))
	if res.SLA != nil {
		if err := res.SLA.Reconcile(); err != nil {
			return err
		}
		emit(o, out, slaTable(res.SLA))
	}
	return nil
}

// fleetTable is the per-VM outcome roll-up of a fleet run.
func fleetTable(res *javmm.FleetResult) *experiments.Table {
	t := &experiments.Table{
		Title:  "Fleet (per-VM outcomes, boot order)",
		Header: []string{"vm", "start", "end", "total", "downtime", "wl-downtime", "traffic", "sla cost"},
	}
	for i := range res.VMs {
		vm := &res.VMs[i]
		cost := "n/a"
		if vm.SLACost != nil {
			cost = fmt.Sprintf("%.4f", vm.SLACost.Total)
		}
		t.AddRow(vm.Name,
			fmtDur(vm.StartAt),
			fmtDur(vm.EndAt),
			fmtDur(vm.Report.TotalTime),
			fmtDur(vm.Report.VMDowntime),
			fmtDur(vm.WorkloadDowntime),
			fmtBytes(vm.Report.TotalBytes()),
			cost)
	}
	return t
}

// linkTable is the per-link utilization audit: the settled-bytes integral
// must match the bytes the engines shipped (byte conservation), and the
// utilization is the time-weighted mean fraction of capacity in use.
func linkTable(rep javmm.FabricReport) *experiments.Table {
	t := &experiments.Table{
		Title:  "Links (time-weighted utilization; settled bytes conserve sent bytes)",
		Header: []string{"link", "bandwidth", "bytes", "transfers", "busy", "peak", "utilization", "conservation err"},
	}
	for _, lu := range rep.Links {
		t.AddRow(lu.Name,
			fmt.Sprintf("%.0f MB/s", float64(lu.Bandwidth)/1e6),
			fmtBytes(lu.BytesSent),
			fmt.Sprintf("%d", lu.Transfers),
			fmtDur(lu.Busy),
			fmt.Sprintf("%d", lu.MaxConcurrent),
			fmt.Sprintf("%.1f%%", lu.Utilization*100),
			fmt.Sprintf("%.1f B", lu.ConservationError()))
	}
	return t
}

// flowTable is the per-flow fair-share account: what contention cost each
// migration beyond its uncontended ideal.
func flowTable(rep javmm.FabricReport) *experiments.Table {
	t := &experiments.Table{
		Title:  "Flows (fair-share queueing beyond the uncontended ideal)",
		Header: []string{"flow", "bytes", "transfers", "queueing", "stalled"},
	}
	for _, fu := range rep.Flows {
		t.AddRow(fu.Name,
			fmtBytes(fu.BytesSent),
			fmt.Sprintf("%d", fu.Transfers),
			fmtDur(fu.Queueing),
			fmtDur(fu.Stall))
	}
	return t
}

// slaTable is the SLA cost summary: per-VM rows plus the fleet aggregate.
func slaTable(f *javmm.FleetSLACost) *experiments.Table {
	t := &experiments.Table{
		Title:  "SLA cost (downtime × penalty + throughput-dip integral)",
		Header: []string{"vm", "mode", "downtime", "downtime cost", "lost ops", "dip sec", "dip cost", "total"},
	}
	for _, c := range f.PerVM {
		t.AddRow(c.VM, c.Mode,
			fmtDur(c.WorkloadDowntime),
			fmt.Sprintf("%.4f", c.DowntimeCost),
			fmt.Sprintf("%.0f", c.LostOps),
			fmt.Sprintf("%d", c.DipSeconds),
			fmt.Sprintf("%.4f", c.DipCost),
			fmt.Sprintf("%.4f", c.Total))
	}
	t.AddRow("fleet", "", "",
		fmt.Sprintf("%.4f", f.DowntimeCost),
		fmt.Sprintf("%.0f", f.LostOps),
		"",
		fmt.Sprintf("%.4f", f.DipCost),
		fmt.Sprintf("%.4f", f.Total))
	t.Notes = append(t.Notes, fmt.Sprintf("worst VM: %s", f.WorstVM))
	return t
}

// analyzeFleetMetrics ingests a fleet snapshot (javmm-migrate -peers
// -metrics-out) and renders per-VM key metrics plus the fleet-scoped fabric
// registry — or, with -prom, the same labeled Prometheus page a live
// collector would serve.
func analyzeFleetMetrics(o options, out io.Writer) error {
	f, err := os.Open(o.FleetMetricsPath)
	if err != nil {
		return err
	}
	snap, err := javmm.ReadFleetSnapshotJSON(f)
	f.Close()
	if err != nil {
		return err
	}
	if o.Prom {
		return javmm.WritePrometheusLabeled(out, javmm.FleetLabeledSnapshots(snap))
	}
	fmt.Fprintf(out, "fleet metrics: %s (%d VMs)\n\n", o.FleetMetricsPath, len(snap.VMs))
	t := &experiments.Table{
		Title:  "Per-VM key metrics",
		Header: []string{"vm", "pages sent", "bytes on wire", "iterations", "net bytes", "net sends"},
	}
	for _, v := range snap.VMs {
		t.AddRow(v.Name,
			counterCell(v.Metrics, "migration.pages_sent"),
			counterCell(v.Metrics, "migration.bytes_on_wire"),
			counterCell(v.Metrics, "migration.iterations"),
			counterCell(v.Metrics, "net.bytes_sent"),
			counterCell(v.Metrics, "net.sends"))
	}
	emit(o, out, t)
	fmt.Fprintln(out, "fleet-scoped registry (fabric links):")
	emit(o, out, counterTable(snap.Fleet))
	emit(o, out, gaugeTable(snap.Fleet))
	return nil
}

// counterCell renders one named counter, "0" when the registry never touched
// it.
func counterCell(s javmm.MetricsSnapshot, name string) string {
	v, _ := s.Counter(name)
	return fmt.Sprintf("%d", v)
}

// analyzeFleetSLA ingests a fleet SLA cost file, re-verifies the aggregate
// against its rows and prints the summary table.
func analyzeFleetSLA(o options, out io.Writer) error {
	f, err := os.Open(o.FleetSLAPath)
	if err != nil {
		return err
	}
	cost, err := javmm.ReadFleetSLAJSON(f)
	f.Close()
	if err != nil {
		return err
	}
	if err := cost.Reconcile(); err != nil {
		return err
	}
	fmt.Fprintf(out, "fleet SLA: %s (%d VMs, aggregate re-derives from rows)\n\n",
		o.FleetSLAPath, len(cost.PerVM))
	emit(o, out, slaTable(&cost))
	return nil
}

// analyzeHealing ingests a healing summary (javmm-migrate -retry -heal-out),
// reconciles each move's ledger resume-refetch bucket against the resume
// plans' queued refetches (the ledger can only tag sends for pages a resume
// plan queued: LedgerResumeSends ≤ RefetchPages), and prints the Healing
// table. -prom renders the same numbers as a Prometheus exposition page.
func analyzeHealing(o options, out io.Writer) error {
	hs, err := javmm.ReadHealingSummary(o.HealPath)
	if err != nil {
		return err
	}
	for _, m := range hs.Moves {
		if m.LedgerResumeSends > m.RefetchPages {
			return fmt.Errorf("healing summary does not reconcile: move %s ledger tagged %d resume-refetch sends, resume plans queued only %d pages",
				m.VM, m.LedgerResumeSends, m.RefetchPages)
		}
	}
	if o.Prom {
		fmt.Fprintf(out, "# TYPE javmm_heal_retries_total counter\njavmm_heal_retries_total %d\n", hs.Retries)
		fmt.Fprintf(out, "# TYPE javmm_heal_relocations_total counter\njavmm_heal_relocations_total %d\n", hs.Relocations)
		fmt.Fprintf(out, "# TYPE javmm_heal_breaker_opens_total counter\njavmm_heal_breaker_opens_total %d\n", hs.BreakerOpens)
		fmt.Fprintf(out, "# TYPE javmm_heal_backoff_seconds counter\njavmm_heal_backoff_seconds %g\n", hs.BackoffTotal.Seconds())
		fmt.Fprintf(out, "# TYPE javmm_heal_token_saved_bytes counter\njavmm_heal_token_saved_bytes %d\n", hs.TokenSavedBytes)
		fmt.Fprintf(out, "# TYPE javmm_heal_move_attempts gauge\n")
		for _, m := range hs.Moves {
			fmt.Fprintf(out, "javmm_heal_move_attempts{vm=%q,outcome=%q} %d\n", m.VM, m.Outcome, m.Attempts)
		}
		fmt.Fprintf(out, "# TYPE javmm_heal_move_refetch_pages gauge\n")
		for _, m := range hs.Moves {
			fmt.Fprintf(out, "javmm_heal_move_refetch_pages{vm=%q} %d\n", m.VM, m.RefetchPages)
		}
		return nil
	}
	fmt.Fprintf(out, "healing summary: %s (%d moves, ledger resume-refetch reconciled)\n\n",
		o.HealPath, len(hs.Moves))
	emit(o, out, healTable(hs))
	fmt.Fprintf(out, "totals: %d retries, %d relocations, %d breaker opens, backoff %v, token reuse saved %d bytes\n",
		hs.Retries, hs.Relocations, hs.BreakerOpens, hs.BackoffTotal, hs.TokenSavedBytes)
	return nil
}

// healTable renders the per-move healing outcomes.
func healTable(hs *javmm.HealingSummary) *experiments.Table {
	t := &experiments.Table{
		Title: "Healing",
		Header: []string{"vm", "route", "outcome", "attempts", "relocations",
			"backoff", "token saved", "refetch pages", "ledger sends", "err"},
	}
	for _, m := range hs.Moves {
		t.AddRow(m.VM, m.From+"->"+m.To, m.Outcome,
			fmt.Sprintf("%d", m.Attempts),
			fmt.Sprintf("%d", m.Relocations),
			m.Backoff.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", m.TokenSavedBytes),
			fmt.Sprintf("%d", m.RefetchPages),
			fmt.Sprintf("%d", m.LedgerResumeSends),
			m.Err)
	}
	return t
}

// analyzeMetrics prints a metrics snapshot as tables, or as Prometheus text
// exposition with -prom.
func analyzeMetrics(o options, out io.Writer) error {
	f, err := os.Open(o.MetricsPath)
	if err != nil {
		return err
	}
	snap, err := javmm.ReadMetricsJSON(f)
	f.Close()
	if err != nil {
		return err
	}
	if o.Prom {
		return javmm.WritePrometheus(out, snap)
	}
	fmt.Fprintf(out, "metrics: %s (snapshot at %v)\n\n", o.MetricsPath, snap.At)
	emit(o, out, counterTable(snap))
	emit(o, out, gaugeTable(snap))
	emit(o, out, histogramTable(snap))
	return nil
}

// attributionTable is the downtime audit: each component, its exact length
// and its share of the workload-visible downtime. The components sum to the
// reported downtime tick-for-tick (Attribute refuses to return otherwise).
func attributionTable(a *javmm.Attribution) *experiments.Table {
	t := &experiments.Table{
		Title:  "Downtime attribution (components sum to workload downtime exactly)",
		Header: []string{"component", "time", "ns", "share"},
	}
	total := a.WorkloadDowntime
	for _, c := range a.Components() {
		t.AddRow(c.Name, fmtDur(c.Dur), fmt.Sprintf("%d", c.Dur.Nanoseconds()), fmtShare(float64(c.Dur), float64(total)))
	}
	t.AddRow("workload downtime", fmtDur(total), fmt.Sprintf("%d", total.Nanoseconds()), "100.0%")
	t.Notes = append(t.Notes,
		fmt.Sprintf("VM paused (stop-and-copy + resumption): %s", fmtDur(a.VMDowntime)))
	if a.Faults > 0 || a.FaultStall > 0 {
		t.Notes = append(t.Notes,
			fmt.Sprintf("post-switchover degradation: %d demand faults stalled the guest %s (not downtime)",
				a.Faults, fmtDur(a.FaultStall)))
	}
	if d := a.Degraded; d != nil {
		t.Notes = append(t.Notes,
			fmt.Sprintf("DEGRADED %s -> %s at %s (%s): assisted components not charged",
				d.From, d.To, fmtDur(d.At), d.Reason))
	}
	if a.Retries > 0 {
		t.Notes = append(t.Notes,
			fmt.Sprintf("recovery: %d retried stage attempts, %s cumulative backoff",
				a.Retries, fmtDur(a.BackoffTotal)))
	}
	return t
}

// iterationTable is the per-round series behind the attribution: traffic,
// dirtying and rates for every pre-copy round and the stop-and-copy.
func iterationTable(a *javmm.Attribution) *experiments.Table {
	t := &experiments.Table{
		Title:  "Iteration series (per-round traffic and dirtying)",
		Header: []string{"iter", "start", "duration", "sent", "pages", "dirtied", "dirty pg/s", "xfer MB/s"},
	}
	for _, it := range a.Iterations {
		idx := fmt.Sprintf("%d", it.Index)
		if it.Last {
			idx += "*"
		}
		t.AddRow(idx,
			fmtDur(it.Start),
			fmtDur(it.Duration),
			fmtBytes(it.BytesOnWire),
			fmt.Sprintf("%d", it.PagesSent),
			fmt.Sprintf("%d", it.PagesDirtied),
			fmt.Sprintf("%.0f", it.DirtyRate),
			fmt.Sprintf("%.1f", it.TransferRate/1e6))
	}
	t.Notes = append(t.Notes, "* = final (stop-and-copy or lazy) round")
	return t
}

// ledgerTable is the provenance roll-up: what moved, what moved twice, what
// the skip policy saved.
func ledgerTable(s javmm.LedgerSummary) *experiments.Table {
	t := &experiments.Table{
		Title:  "Ledger summary (per-page provenance)",
		Header: []string{"metric", "value"},
	}
	t.AddRow("pages tracked", fmt.Sprintf("%d", s.NumPages))
	t.AddRow("total sends", fmt.Sprintf("%d", s.TotalSends))
	t.AddRow("total bytes", fmtBytes(s.TotalBytes))
	t.AddRow("wasted bytes (re-sends)", fmtBytes(s.WastedBytes))
	t.AddRow("saved bytes (skips)", fmtBytes(s.SavedBytes))
	t.AddRow("pages never sent", fmt.Sprintf("%d", s.PagesNeverSent))
	t.AddRow("pages sent once", fmt.Sprintf("%d", s.PagesSentOnce))
	t.AddRow("pages re-sent", fmt.Sprintf("%d", s.PagesResent))
	t.AddRow("max sends of one page", fmt.Sprintf("%d", s.MaxSends))
	return t
}

// trafficTable splits the wire traffic by send reason; the bytes column
// sums to the report's total traffic exactly.
func trafficTable(s javmm.LedgerSummary) *experiments.Table {
	t := &experiments.Table{
		Title:  "Traffic by send reason (sums to report total exactly)",
		Header: []string{"reason", "sends", "bytes", "share"},
	}
	for _, r := range javmm.SendReasons() {
		rt := s.SendsByReason[r]
		t.AddRow(r.String(), fmt.Sprintf("%d", rt.Count), fmtBytes(rt.Bytes),
			fmtShare(float64(rt.Bytes), float64(s.TotalBytes)))
	}
	t.AddRow("total", fmt.Sprintf("%d", s.TotalSends), fmtBytes(s.TotalBytes), "100.0%")
	return t
}

// skipTable splits the pages the engine left behind by cause.
func skipTable(s javmm.LedgerSummary) *experiments.Table {
	t := &experiments.Table{
		Title:  "Skips by reason (bitmap and free skips are traffic saved)",
		Header: []string{"reason", "events", "raw bytes", "saved"},
	}
	for _, r := range javmm.SkipReasons() {
		rt := s.SkipsByReason[r]
		saved := "no"
		if r.Saved() {
			saved = "yes"
		}
		t.AddRow(r.String(), fmt.Sprintf("%d", rt.Count), fmtBytes(rt.Bytes), saved)
	}
	return t
}

// topPagesTable lists the hottest pages: the ones the pre-copy rounds kept
// re-sending.
func topPagesTable(pages []javmm.PageStat, n int) *experiments.Table {
	t := &experiments.Table{
		Title:  fmt.Sprintf("Top %d hottest pages (most sends first)", n),
		Header: []string{"pfn", "sends", "bytes", "last iter", "skips"},
	}
	for _, p := range pages {
		t.AddRow(fmt.Sprintf("0x%x", uint64(p.PFN)),
			fmt.Sprintf("%d", p.Sends),
			fmtBytes(p.Bytes),
			fmt.Sprintf("%d", p.LastIter),
			fmt.Sprintf("%d", p.Skips))
	}
	return t
}

// integrityTable is the end-to-end verification audit: what the digest plane
// checked and healed, and — on resumed runs — how much of the resume token
// was honoured versus refetched. Nil when the run recorded neither.
func integrityTable(rep *javmm.Report, sum javmm.LedgerSummary) *experiments.Table {
	ic, rs := rep.Integrity, rep.Resume
	if ic == nil && rs == nil {
		return nil
	}
	t := &experiments.Table{
		Title:  "Integrity and resume (digest audit, repairs, token reuse)",
		Header: []string{"metric", "value"},
	}
	if ic != nil {
		t.AddRow("pages audited", fmt.Sprintf("%d", ic.PagesAudited))
		t.AddRow("audit rounds", fmt.Sprintf("%d", ic.AuditRounds))
		t.AddRow("digest mismatches", fmt.Sprintf("%d", ic.Mismatches))
		t.AddRow("repairs", fmt.Sprintf("%d", ic.Repairs))
		t.AddRow("repair traffic", fmtBytes(ic.RepairBytes))
		t.AddRow("rolling digest", fmt.Sprintf("%016x", ic.RollingDigest))
	}
	if rs != nil {
		if rs.FullFirstCopy {
			t.AddRow("resume", fmt.Sprintf("token refused (%s)", rs.Reason))
		} else {
			t.AddRow("resume trusted pages", fmt.Sprintf("%d", rs.TrustedPages))
			t.AddRow("resume refetch pages", fmt.Sprintf("%d", rs.RefetchPages))
			t.AddRow("resume saved bytes", fmtBytes(rs.SavedBytes))
		}
		rt := sum.SendsByReason[javmm.ReasonResumeRefetch]
		t.AddRow("resume-refetch traffic", fmt.Sprintf("%d sends, %s", rt.Count, fmtBytes(rt.Bytes)))
	}
	if ic != nil && ic.Mismatches > 0 {
		t.Notes = append(t.Notes,
			"every mismatch was repaired by verified re-fetch before the run reported success")
	}
	return t
}

// faultStallTable summarizes post-switchover demand-fault stalls with exact
// quantiles, or nil when the run recorded no faults.
func faultStallTable(s javmm.MetricsSnapshot) *experiments.Table {
	h, ok := s.Histogram("migration.fault_stall_ns")
	if !ok || h.Count == 0 {
		return nil
	}
	t := &experiments.Table{
		Title:  "Demand-fault stalls (per-fault guest stall)",
		Header: []string{"faults", "mean", "p50", "p95", "p99", "max"},
	}
	t.AddRow(fmt.Sprintf("%d", h.Count),
		fmtDur(time.Duration(h.Mean)),
		fmtDur(time.Duration(h.P50)),
		fmtDur(time.Duration(h.P95)),
		fmtDur(time.Duration(h.P99)),
		fmtDur(time.Duration(h.Max)))
	return t
}

// kindTable counts trace events by kind.
func kindTable(events []javmm.Event) *experiments.Table {
	counts := map[string]int{}
	for _, ev := range events {
		counts[string(ev.Kind)]++
	}
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	t := &experiments.Table{
		Title:  "Events by kind",
		Header: []string{"kind", "events"},
	}
	for _, k := range kinds {
		t.AddRow(k, fmt.Sprintf("%d", counts[k]))
	}
	return t
}

// spanAgg accumulates the paired begin/end spans of one (track, name).
type spanAgg struct {
	track, name string
	count       int
	total       time.Duration
	min, max    time.Duration
}

// spanTable pairs begin/end events per track (the tracer enforces LIFO
// nesting, so a stack reconstructs the pairing exactly) and rolls the spans
// up by track and name.
func spanTable(events []javmm.Event) *experiments.Table {
	type open struct {
		name string
		at   time.Duration
	}
	stacks := map[string][]open{}
	aggs := map[string]*spanAgg{}
	for _, ev := range events {
		switch ev.Phase {
		case "begin":
			stacks[ev.Track] = append(stacks[ev.Track], open{ev.Name, ev.At})
		case "end":
			st := stacks[ev.Track]
			if len(st) == 0 {
				continue
			}
			top := st[len(st)-1]
			stacks[ev.Track] = st[:len(st)-1]
			d := ev.At - top.at
			key := ev.Track + "\x00" + top.name
			a := aggs[key]
			if a == nil {
				a = &spanAgg{track: ev.Track, name: top.name, min: d, max: d}
				aggs[key] = a
			}
			a.count++
			a.total += d
			if d < a.min {
				a.min = d
			}
			if d > a.max {
				a.max = d
			}
		}
	}
	keys := make([]string, 0, len(aggs))
	for k := range aggs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	t := &experiments.Table{
		Title:  "Spans by track and name",
		Header: []string{"track", "span", "count", "total", "mean", "min", "max"},
	}
	for _, k := range keys {
		a := aggs[k]
		t.AddRow(a.track, a.name,
			fmt.Sprintf("%d", a.count),
			fmtDur(a.total),
			fmtDur(a.total/time.Duration(a.count)),
			fmtDur(a.min),
			fmtDur(a.max))
	}
	return t
}

// counterTable, gaugeTable and histogramTable render a metrics snapshot.
func counterTable(s javmm.MetricsSnapshot) *experiments.Table {
	t := &experiments.Table{
		Title:  "Counters",
		Header: []string{"name", "value"},
	}
	for _, c := range s.Counters {
		t.AddRow(c.Name, fmt.Sprintf("%d", c.Value))
	}
	return t
}

func gaugeTable(s javmm.MetricsSnapshot) *experiments.Table {
	t := &experiments.Table{
		Title:  "Gauges",
		Header: []string{"name", "value", "time-weighted mean"},
	}
	for _, g := range s.Gauges {
		t.AddRow(g.Name, fmt.Sprintf("%g", g.Value), fmt.Sprintf("%g", g.TimeWeightedMean))
	}
	return t
}

func histogramTable(s javmm.MetricsSnapshot) *experiments.Table {
	t := &experiments.Table{
		Title:  "Histograms (exact quantiles over retained samples)",
		Header: []string{"name", "n", "mean", "p50", "p95", "p99", "min", "max"},
	}
	for _, h := range s.Histograms {
		t.AddRow(h.Name,
			fmt.Sprintf("%d", h.Count),
			fmt.Sprintf("%g", h.Mean),
			fmt.Sprintf("%g", h.P50),
			fmt.Sprintf("%g", h.P95),
			fmt.Sprintf("%g", h.P99),
			fmt.Sprintf("%g", h.Min),
			fmt.Sprintf("%g", h.Max))
	}
	return t
}

// writeFile creates path and streams fn into it.
func writeFile(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = fn(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// fmtShare renders part/whole as a percentage, "n/a" for an empty whole.
func fmtShare(part, whole float64) string {
	if whole == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", part/whole*100)
}

// fmtBytes renders a byte count in decimal units, as traffic is reported.
func fmtBytes(b uint64) string {
	switch {
	case b >= 1e9:
		return fmt.Sprintf("%.2f GB", float64(b)/1e9)
	case b >= 1e6:
		return fmt.Sprintf("%.1f MB", float64(b)/1e6)
	case b >= 1e3:
		return fmt.Sprintf("%.1f KB", float64(b)/1e3)
	default:
		return fmt.Sprintf("%d B", b)
	}
}

// fmtDur renders a duration with sensible precision for the tables.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3f s", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2f ms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%d µs", d.Microseconds())
	}
}
