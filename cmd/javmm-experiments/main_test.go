package main

import (
	"testing"
	"time"

	"javmm/internal/experiments"
)

func fastOptions() experiments.Options {
	return experiments.Options{
		Warmup:     60 * time.Second,
		Cooldown:   20 * time.Second,
		Seeds:      []int64{1},
		ProfileDur: 30 * time.Second,
	}
}

func TestRunSelectedExperiments(t *testing.T) {
	selected := func(ids ...string) bool {
		for _, id := range ids {
			if id == "table1" || id == "fig1" {
				return true
			}
		}
		return false
	}
	if err := run(fastOptions(), selected); err != nil {
		t.Fatal(err)
	}
}

func TestRunNothingSelected(t *testing.T) {
	selected := func(...string) bool { return false }
	if err := run(fastOptions(), selected); err != nil {
		t.Fatal(err)
	}
}

func TestSelectedGrouping(t *testing.T) {
	// fig8 and fig9 share a runner; selecting only fig9 must still work.
	selected := func(ids ...string) bool {
		for _, id := range ids {
			if id == "fig9" {
				return true
			}
		}
		return false
	}
	if err := run(fastOptions(), selected); err != nil {
		t.Fatal(err)
	}
}
