// Command javmm-experiments regenerates the paper's tables and figures (and
// the §6 extension ablations) and prints them as ASCII tables. EXPERIMENTS.md
// records a captured run next to the paper's numbers.
//
// Usage:
//
//	javmm-experiments                 # run everything at paper scale
//	javmm-experiments -run fig10      # one experiment
//	javmm-experiments -warmup 120s    # quicker, slightly less faithful
//
// Experiment IDs: table1 fig1 fig5 fig8 fig9 table2 fig10 fig11 table3 fig12
// x2 x3 x4 x5 x6 x7 x8 x9 x10 x11 x12 x13 x14 (alias: res) x15 (alias:
// contention) x16 (alias: orchestration) x17 (alias: heal) all.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"javmm/internal/experiments"
)

func main() {
	var (
		runIDs     = flag.String("run", "all", "comma-separated experiment ids")
		warmup     = flag.Duration("warmup", 300*time.Second, "virtual warmup before each migration")
		profileDur = flag.Duration("profile", 600*time.Second, "Figure 5 profiling duration")
		seeds      = flag.Int("seeds", 3, "repetitions per configuration (>=3 gives CIs)")
		csvDir     = flag.String("csv", "", "also write each table as CSV into this directory")
	)
	flag.Parse()
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "javmm-experiments:", err)
			os.Exit(1)
		}
	}
	csvOut = *csvDir

	o := experiments.Options{
		Warmup:     *warmup,
		ProfileDur: *profileDur,
	}
	for i := 1; i <= *seeds; i++ {
		o.Seeds = append(o.Seeds, int64(i))
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*runIDs, ",") {
		want[strings.TrimSpace(id)] = true
	}
	all := want["all"]
	selected := func(ids ...string) bool {
		if all {
			return true
		}
		for _, id := range ids {
			if want[id] {
				return true
			}
		}
		return false
	}

	if err := run(o, selected); err != nil {
		fmt.Fprintln(os.Stderr, "javmm-experiments:", err)
		os.Exit(1)
	}
}

// csvOut, when non-empty, receives one CSV file per rendered table.
var csvOut string

func run(o experiments.Options, selected func(...string) bool) error {
	show := func(t *experiments.Table) {
		fmt.Println(t.Render())
		if csvOut != "" {
			path := filepath.Join(csvOut, t.Slug()+".csv")
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "javmm-experiments: writing", path, ":", err)
			}
		}
	}

	if selected("table1") {
		show(experiments.Table1())
	}
	if selected("fig1") {
		t, err := experiments.Figure1(o)
		if err != nil {
			return err
		}
		show(t)
	}
	if selected("fig5") {
		t, err := experiments.Figure5(o)
		if err != nil {
			return err
		}
		show(t)
	}
	if selected("fig8", "fig9") {
		fig8, fig9, err := experiments.Figure8and9(o)
		if err != nil {
			return err
		}
		if selected("fig8") {
			show(fig8)
		}
		if selected("fig9") {
			show(fig9)
		}
	}
	if selected("table2", "fig10", "fig11") {
		profs, err := experiments.Figure10Workloads()
		if err != nil {
			return err
		}
		cs, err := experiments.CompareWorkloads(profs, o, nil)
		if err != nil {
			return err
		}
		if selected("table2") {
			show(experiments.Table2(cs))
		}
		if selected("fig10") {
			timeT, trafficT, downT, attribT, cpuT := experiments.Figure10(cs)
			show(timeT)
			show(trafficT)
			show(downT)
			show(attribT)
			show(cpuT)
		}
		if selected("fig11") {
			for _, t := range experiments.Figure11(cs, 80) {
				show(t)
			}
		}
	}
	if selected("table3", "fig12") {
		profs, err := experiments.Figure12Workloads()
		if err != nil {
			return err
		}
		overrides := experiments.Table3Overrides()
		cs, err := experiments.CompareWorkloads(profs, o, overrides)
		if err != nil {
			return err
		}
		if selected("table3") {
			show(experiments.Table3(cs, overrides))
		}
		if selected("fig12") {
			timeT, trafficT, downT := experiments.Figure12(cs)
			show(timeT)
			show(trafficT)
			show(downT)
		}
	}
	if selected("x2") {
		t, err := experiments.AblationCompression(o)
		if err != nil {
			return err
		}
		show(t)
	}
	if selected("x3") {
		t, err := experiments.AblationCache(o)
		if err != nil {
			return err
		}
		show(t)
	}
	if selected("x4") {
		t, err := experiments.AblationPolicy(o)
		if err != nil {
			return err
		}
		show(t)
	}
	if selected("x5") {
		t, err := experiments.AblationFinalUpdate(o)
		if err != nil {
			return err
		}
		show(t)
	}
	if selected("x6") {
		t, err := experiments.AblationALB(o)
		if err != nil {
			return err
		}
		show(t)
	}
	if selected("x7") {
		t, err := experiments.AblationScale(o)
		if err != nil {
			return err
		}
		show(t)
	}
	if selected("x8") {
		t, err := experiments.AblationPostCopy(o)
		if err != nil {
			return err
		}
		show(t)
	}
	if selected("x9") {
		t, err := experiments.AblationReplication(o)
		if err != nil {
			return err
		}
		show(t)
	}
	if selected("x10") {
		t, err := experiments.AblationCongestion(o)
		if err != nil {
			return err
		}
		show(t)
	}
	if selected("x11") {
		t, err := experiments.AblationG1(o)
		if err != nil {
			return err
		}
		show(t)
	}
	if selected("x12") {
		t, err := experiments.AblationFreePages(o)
		if err != nil {
			return err
		}
		show(t)
	}
	if selected("x13") {
		t, err := experiments.AblationDelta(o)
		if err != nil {
			return err
		}
		show(t)
	}
	if selected("x14", "res") {
		t, err := experiments.AblationResilience(o)
		if err != nil {
			return err
		}
		show(t)
	}
	if selected("x15", "contention") {
		t, err := experiments.AblationContention(o)
		if err != nil {
			return err
		}
		show(t)
	}
	if selected("x16", "orchestration") {
		t, err := experiments.AblationOrchestration(o)
		if err != nil {
			return err
		}
		show(t)
	}
	if selected("x17", "heal") {
		t, err := experiments.AblationHealing(o)
		if err != nil {
			return err
		}
		show(t)
	}
	return nil
}
