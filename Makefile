# javmm build & verification entry points.
#
# `make check` is the full tier-1 gate: formatting, vet, the test suite and
# the race detector. Everything uses only the standard Go toolchain.

GO ?= go

.PHONY: all build test race vet fmt check bench

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The experiments package replays full paper tables and runs well past the
# default 10m under the race detector; give the suite headroom.
race:
	$(GO) test -race -timeout 30m ./...

vet:
	$(GO) vet ./...

# fmt fails if any file is not gofmt-clean, and prints the offenders.
fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

check: fmt vet build test race

bench:
	$(GO) test -bench=. -benchmem ./...
