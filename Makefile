# javmm build & verification entry points.
#
# `make check` is the full tier-1 gate: formatting, vet, the test suite and
# the race detector. Everything uses only the standard Go toolchain.

GO ?= go

.PHONY: all build test race vet fmt check bench bench-smoke bench-json

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The experiments package replays full paper tables and runs well past the
# default 10m under the race detector; give the suite headroom.
race:
	$(GO) test -race -timeout 30m ./...

vet:
	$(GO) vet ./...

# fmt fails if any file is not gofmt-clean, and prints the offenders.
fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

check: fmt vet build test race

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-smoke runs every Go benchmark exactly once — a compile-and-execute
# check, not a measurement.
bench-smoke:
	$(GO) test -run '^$$' -bench=. -benchtime=1x ./...

# bench-json records a perf-plane snapshot with the trajectory harness and
# compares it against the committed baseline. Deterministic drift and missing
# entries fail even in report-only mode; timing regressions are advisory here
# (CI hardware is too noisy for a hard wall-time gate).
BENCH_BASELINE ?= BENCH_0005.json
bench-json:
	mkdir -p bench-artifacts
	$(GO) run ./cmd/javmm-bench -label ci -out bench-artifacts/bench.json
	$(GO) run ./cmd/javmm-bench -compare -report-only $(BENCH_BASELINE) bench-artifacts/bench.json
