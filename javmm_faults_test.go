package javmm_test

import (
	"bytes"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"javmm"
)

// bootSmall boots a modest VM (1 GiB, 256 MiB young cap, short warmup) so
// the 4-mode × many-fault matrix stays fast enough for -race -count=2.
func bootSmall(t *testing.T, assisted bool, seed int64) *javmm.VM {
	t.Helper()
	prof, err := javmm.Workload("derby")
	if err != nil {
		t.Fatal(err)
	}
	prof.MaxYoungBytes = 256 << 20
	if prof.InitialYoungBytes > prof.MaxYoungBytes {
		prof.InitialYoungBytes = prof.MaxYoungBytes
	}
	vm, err := javmm.BootVM(javmm.BootConfig{
		MemBytes: 1 << 30,
		Profile:  prof,
		Assisted: assisted,
		Seed:     seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	vm.Driver.Run(20 * time.Second)
	if vm.Driver.Err != nil {
		t.Fatal(vm.Driver.Err)
	}
	return vm
}

// faultCase is one column of the matrix: a fault plan plus what a run under
// it is allowed to do.
type faultCase struct {
	name  string
	specs []string
	// abort marks plans whose injected failure is permanent: the run must
	// abort cleanly instead of completing.
	abort bool
	// abortOK lists modes where a clean abort is acceptable even though the
	// fault is transient. A partition during post-copy's lazy phase freezes
	// the faulting vCPU, so retry backoff accumulates as stall debt without
	// advancing the virtual clock — the window never heals from inside the
	// fetch path and the run aborts (the post-copy fragility §2 of the
	// paper holds against pre-copy's robustness).
	abortOK []javmm.Mode
	// degradesAssisted marks the plan that downgrades ModeJAVMM runs to
	// vanilla semantics (other modes complete unaffected).
	degradesAssisted bool
	// wantRepairs marks plans that corrupt page payloads in flight: a
	// completed run must account a repair for every digest mismatch.
	wantRepairs bool
}

// matrixCases covers every injection site at least once.
func matrixCases() []faultCase {
	return []faultCase{
		{name: "none", specs: nil},
		{name: "partition", specs: []string{"link.partition@2s,for=300ms"},
			abortOK: []javmm.Mode{javmm.ModePostCopy, javmm.ModeHybrid}},
		{name: "bandwidth", specs: []string{"link.bandwidth@1s,for=2s,factor=0.2"}},
		{name: "netlink-loss", specs: []string{"netlink.loss#2,count=2"}},
		{name: "netlink-delay", specs: []string{"netlink.delay#1,delay=10ms"}},
		{name: "handshake", specs: []string{"lkm.handshake"}, degradesAssisted: true},
		{name: "dest-receive", specs: []string{"dest.receive#100,count=3"}},
		{name: "postcopy-fetch", specs: []string{"postcopy.fetch#1,count=2"}},
		{name: "corrupt-stream", specs: []string{"corrupt-page-stream#40,count=3"},
			wantRepairs: true},
		{name: "dest-crash", specs: []string{"dest.crash@3s"}, abort: true},
		{name: "long-partition", specs: []string{"link.partition@2s,for=120s"}, abort: true},
	}
}

// TestModeFaultMatrix runs every mode against every fault plan and asserts
// the run either completes correctly (verified destination, reconciled
// accounting) or aborts cleanly (source resumed, destination discarded) —
// with no goroutine leaks either way.
func TestModeFaultMatrix(t *testing.T) {
	modes := []struct {
		name string
		mode javmm.Mode
	}{
		{"xen", javmm.ModeXen},
		{"javmm", javmm.ModeJAVMM},
		{"post-copy", javmm.ModePostCopy},
		{"hybrid", javmm.ModeHybrid},
	}
	baseline := runtime.NumGoroutine()
	for _, m := range modes {
		for _, fc := range matrixCases() {
			t.Run(m.name+"/"+fc.name, func(t *testing.T) {
				vm := bootSmall(t, m.mode == javmm.ModeJAVMM, 7)
				plan, err := javmm.ParseFaultPlan(fc.specs)
				if err != nil {
					t.Fatal(err)
				}
				var inj *javmm.FaultInjector
				if len(plan) > 0 {
					if inj, err = javmm.NewFaultInjector(vm.Clock, plan); err != nil {
						t.Fatal(err)
					}
				}
				led := javmm.NewLedger()
				res, err := javmm.Migrate(vm, javmm.MigrateOptions{
					Mode:   m.mode,
					Faults: inj,
					Ledger: led,
				})

				abortAllowed := fc.abort
				for _, am := range fc.abortOK {
					if am == m.mode {
						abortAllowed = true
					}
				}
				if fc.abort && err == nil {
					t.Fatal("run under a permanent fault completed")
				}
				if err != nil {
					if !abortAllowed {
						t.Fatalf("run failed: %v", err)
					}
					if res == nil || res.Report == nil {
						t.Fatal("aborted run returned no partial report")
					}
					rec := res.Recovery
					if rec == nil || !rec.Aborted || rec.AbortReason == "" {
						t.Fatalf("abort not recorded: %+v", rec)
					}
					if vm.Dom.Paused() {
						t.Fatal("source VM left paused after abort")
					}
					if !res.Destination.Discarded() {
						t.Fatal("destination not discarded after abort")
					}
					if !errors.Is(err, javmm.ErrRetriesExhausted) && !errors.Is(err, javmm.ErrDestinationLost) {
						t.Fatalf("abort error %v is neither retries-exhausted nor destination-lost", err)
					}
					// The source stays usable: it can run and be re-migrated.
					vm.Driver.Run(time.Second)
					if vm.Driver.Err != nil {
						t.Fatalf("source VM broken after abort: %v", vm.Driver.Err)
					}
					return
				}

				if res.VerifyErr != nil {
					t.Fatalf("destination verification failed: %v", res.VerifyErr)
				}
				// The accounting must reconcile byte-for-byte even with
				// faults (and their retries) in the stream.
				if _, err := javmm.Attribute(res, led); err != nil {
					t.Fatalf("attribution does not reconcile: %v", err)
				}
				wantEffective := m.mode
				if fc.degradesAssisted && m.mode == javmm.ModeJAVMM {
					wantEffective = javmm.ModeXen
					rec := res.Recovery
					if rec == nil || rec.Degraded == nil {
						t.Fatal("degradation not recorded")
					}
				}
				if got := res.EffectiveMode(); got != wantEffective {
					t.Fatalf("effective mode %v, want %v", got, wantEffective)
				}
				if fc.wantRepairs {
					ic := res.Report.Integrity
					if ic == nil {
						t.Fatal("corrupting run carries no integrity section")
					}
					// A corrupted page that is re-dirtied and re-sent before
					// the audit converges without a recorded mismatch; every
					// mismatch the audit does catch must have been repaired.
					if ic.Repairs != ic.Mismatches {
						t.Fatalf("completed with %d repairs for %d mismatches", ic.Repairs, ic.Mismatches)
					}
					if len(inj.Events()) == 0 {
						t.Fatal("corruption never fired")
					}
				}
			})
		}
	}
	// The simulator is single-threaded: no run may leave goroutines behind.
	// Allow slack for runtime housekeeping (GC workers, test plumbing).
	if now := runtime.NumGoroutine(); now > baseline+4 {
		t.Fatalf("goroutine leak: %d before matrix, %d after", baseline, now)
	}
}

// migrateTraced runs one faulted migration and returns the report plus the
// serialized JSONL trace.
func migrateTraced(t *testing.T, mode javmm.Mode, specs []string, vmSeed, backoffSeed int64) (*javmm.Report, []byte) {
	t.Helper()
	vm := bootSmall(t, mode == javmm.ModeJAVMM, vmSeed)
	plan, err := javmm.ParseFaultPlan(specs)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := javmm.NewFaultInjector(vm.Clock, plan)
	if err != nil {
		t.Fatal(err)
	}
	tracer := javmm.NewTracer(vm.Clock)
	engine := javmm.EngineConfig{}
	engine.Recovery.Seed = backoffSeed
	res, err := javmm.Migrate(vm, javmm.MigrateOptions{
		Mode:   mode,
		Faults: inj,
		Tracer: tracer,
		Engine: engine,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := javmm.WriteTraceJSONL(&buf, tracer.Events()); err != nil {
		t.Fatal(err)
	}
	return res.Report, buf.Bytes()
}

// TestFaultedRunsAreDeterministic is the reproducibility property the fault
// plane exists for: the same seed and fault plan produce a byte-identical
// report and trace; a different backoff seed produces a different retry
// schedule.
func TestFaultedRunsAreDeterministic(t *testing.T) {
	specs := []string{"link.partition@2s,for=300ms", "dest.receive#50,count=2"}

	rep1, trace1 := migrateTraced(t, javmm.ModeXen, specs, 7, 1)
	rep2, trace2 := migrateTraced(t, javmm.ModeXen, specs, 7, 1)
	if !bytes.Equal(trace1, trace2) {
		t.Fatal("same seed + fault plan produced different JSONL traces")
	}
	if !reflect.DeepEqual(rep1, rep2) {
		t.Fatalf("same seed + fault plan produced different reports:\n%+v\n%+v", rep1, rep2)
	}
	if rep1.Recovery == nil || len(rep1.Recovery.Retries) == 0 {
		t.Fatal("fault plan injected no retries; the property is vacuous")
	}

	// A different backoff seed keeps the faults but reshuffles the jitter.
	rep3, _ := migrateTraced(t, javmm.ModeXen, specs, 7, 99)
	if rep3.Recovery == nil || len(rep3.Recovery.Retries) == 0 {
		t.Fatal("reseeded run recorded no retries")
	}
	schedule := func(r *javmm.Report) []time.Duration {
		var ds []time.Duration
		for _, rr := range r.Recovery.Retries {
			ds = append(ds, rr.Backoff)
		}
		return ds
	}
	if reflect.DeepEqual(schedule(rep1), schedule(rep3)) {
		t.Fatalf("seeds 1 and 99 produced identical backoff schedules: %v", schedule(rep1))
	}
}

// TestFaultTraceCarriesInjectionAndRecovery asserts the acceptance-path
// visibility: an injected handshake timeout shows up in the trace as a
// fault.injected event and a migration.degrade event.
func TestFaultTraceCarriesInjectionAndRecovery(t *testing.T) {
	vm := bootSmall(t, true, 7)
	plan, err := javmm.ParseFaultPlan([]string{"lkm.handshake"})
	if err != nil {
		t.Fatal(err)
	}
	inj, err := javmm.NewFaultInjector(vm.Clock, plan)
	if err != nil {
		t.Fatal(err)
	}
	tracer := javmm.NewTracer(vm.Clock)
	metrics := javmm.NewMetrics(vm.Clock)
	res, err := javmm.Migrate(vm, javmm.MigrateOptions{
		Mode:    javmm.ModeJAVMM,
		Faults:  inj,
		Tracer:  tracer,
		Metrics: metrics,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.EffectiveMode(); got != javmm.ModeXen {
		t.Fatalf("effective mode %v, want xen", got)
	}
	kinds := map[string]int{}
	for _, e := range tracer.Events() {
		kinds[string(e.Kind)]++
	}
	if kinds["fault.injected"] == 0 {
		t.Fatalf("no fault.injected events in trace: %v", kinds)
	}
	if kinds["migration.degrade"] == 0 {
		t.Fatalf("no migration.degrade event in trace: %v", kinds)
	}
	snap := metrics.Snapshot()
	for _, want := range []string{"faults.injected", "migration.degraded"} {
		found := false
		for _, c := range snap.Counters {
			if c.Name == want && c.Value > 0 {
				found = true
			}
		}
		if !found {
			t.Errorf("counter %s missing or zero", want)
		}
	}
	if ev := inj.Events(); len(ev) != 1 || ev[0].Site != javmm.FaultLKMHandshake {
		t.Fatalf("injector audit log %+v, want one lkm.handshake event", ev)
	}
}

// TestAbortedRunLeavesSourceRemigratable aborts a run with a crashed
// destination, then migrates the same VM again fault-free and verifies it.
func TestAbortedRunLeavesSourceRemigratable(t *testing.T) {
	vm := bootSmall(t, false, 7)
	plan, err := javmm.ParseFaultPlan([]string{"dest.crash@2s"})
	if err != nil {
		t.Fatal(err)
	}
	inj, err := javmm.NewFaultInjector(vm.Clock, plan)
	if err != nil {
		t.Fatal(err)
	}
	res, err := javmm.Migrate(vm, javmm.MigrateOptions{Mode: javmm.ModeXen, Faults: inj})
	if err == nil {
		t.Fatal("crashed-destination run completed")
	}
	if !errors.Is(err, javmm.ErrDestinationLost) {
		t.Fatalf("abort error = %v, want ErrDestinationLost", err)
	}
	if !res.Destination.Discarded() {
		t.Fatal("destination not discarded")
	}

	// Second attempt, no faults: must complete and verify.
	vm.Driver.Run(5 * time.Second)
	if vm.Driver.Err != nil {
		t.Fatal(vm.Driver.Err)
	}
	res2, err := javmm.Migrate(vm, javmm.MigrateOptions{Mode: javmm.ModeXen})
	if err != nil {
		t.Fatalf("re-migration after abort failed: %v", err)
	}
	if res2.VerifyErr != nil {
		t.Fatalf("re-migration verification failed: %v", res2.VerifyErr)
	}
}

// TestFaultSiteCatalog pins the public site list: tooling (CLI help, docs)
// builds on these names.
func TestFaultSiteCatalog(t *testing.T) {
	want := []javmm.FaultSite{
		javmm.FaultLinkPartition, javmm.FaultLinkBandwidth,
		javmm.FaultNetlinkLoss, javmm.FaultNetlinkDelay,
		javmm.FaultLKMHandshake, javmm.FaultDestReceive,
		javmm.FaultDestCrash, javmm.FaultPostCopyFetch,
		javmm.FaultCorruptPageStream,
		javmm.FaultHostCrash, javmm.FaultHostFlaky,
	}
	got := javmm.FaultSites()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("FaultSites() = %v, want %v", got, want)
	}
	// Every site name round-trips through the CLI parser.
	for _, s := range got {
		spec := string(s)
		if s.Windowed() {
			spec += ",for=1s"
		}
		if s == javmm.FaultLinkBandwidth {
			spec += ",factor=0.5"
		}
		if s == javmm.FaultNetlinkDelay {
			spec += ",delay=1ms"
		}
		r, err := javmm.ParseFaultRule(spec)
		if err != nil {
			t.Errorf("ParseFaultRule(%q): %v", spec, err)
			continue
		}
		if r.Site != s {
			t.Errorf("ParseFaultRule(%q).Site = %v", spec, r.Site)
		}
	}
}
